// Package hostsim is a discrete-event simulator of the Linux host network
// stack, built to reproduce the measurement study "Understanding Host
// Network Stack Overheads" (Cai et al., SIGCOMM 2021).
//
// It models the full end-to-end data path of a 100Gbps two-server testbed
// — write/read syscalls, data copies with a DDIO/L3 cache model, TCP with
// CUBIC/DCTCP/BBR, GSO/TSO segmentation, GRO/LRO aggregation, NAPI and
// interrupt moderation, receive flow steering (RSS/RPS/RFS/aRFS),
// NUMA-aware page allocation, an optional IOMMU, and a lossy switch — and
// accounts every simulated CPU cycle to the paper's eight-category
// taxonomy (Table 1).
//
// The entry point is Run:
//
//	res, err := hostsim.Run(hostsim.Config{Stack: hostsim.AllOptimizations()},
//	    hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
//	fmt.Println(res.ThroughputPerCoreGbps)
//
// Every figure and table of the paper's evaluation can be regenerated
// from this API; see cmd/figures and EXPERIMENTS.md.
package hostsim

import (
	"fmt"
	"io"
	"sort"
	"time"

	"hostsim/internal/check"
	"hostsim/internal/core"
	"hostsim/internal/cpumodel"
	"hostsim/internal/fabric"
	"hostsim/internal/fabricobs"
	"hostsim/internal/inspect"
	"hostsim/internal/mtrace"
	"hostsim/internal/profile"
	"hostsim/internal/sim"
	"hostsim/internal/skb"
	"hostsim/internal/stage"
	"hostsim/internal/telemetry"
	"hostsim/internal/topology"
	"hostsim/internal/trace"
	"hostsim/internal/units"
)

// Stack mirrors the paper's stack configuration knobs.
type Stack struct {
	TSO         bool   // hardware segmentation offload
	GSO         bool   // software segmentation when TSO is off
	GRO         bool   // software receive aggregation
	LRO         bool   // hardware receive aggregation (instead of GRO)
	JumboFrames bool   // 9000B MTU
	ARFS        bool   // accelerated receive flow steering
	DCA         bool   // DDIO into the NIC-local L3
	IOMMU       bool   // IOMMU map/unmap per DMA page
	CC          string // "cubic" (default), "reno", "dctcp", "bbr"

	// Steering overrides the flow steering policy: "arfs", "worst"
	// (the paper's deterministic aRFS-off pinning), "rss", "rfs"
	// (software flow steering), "rps" (software packet steering) or
	// "same-numa" (IRQs on a different core of the app's NUMA node).
	// Empty derives from the ARFS flag: arfs when set, worst otherwise.
	Steering string

	// ZeroCopyTx enables MSG_ZEROCOPY-style transmission (§4 of the
	// paper): application pages are pinned and DMAed directly, skipping
	// the user-to-kernel copy at a small pin/completion cost.
	ZeroCopyTx bool
	// ZeroCopyRx enables the paper's mmap-based receive path: payload
	// pages are mapped into the application instead of copied, at a
	// per-page remap cost.
	ZeroCopyRx bool

	// DCAAwareDRS caps receive-buffer autotuning at the DDIO capacity —
	// the paper's §4 proposal that buffer tuning should account for L3
	// size. Ignored when RcvBufBytes pins the buffer.
	DCAAwareDRS bool

	// RcvSchedulerK enables a Homa/pHost-inspired receiver-driven
	// scheduler (§4): at most K connections per receiving core hold a
	// window at a time, rotated every millisecond. 0 = off.
	RcvSchedulerK int

	RxDescriptors int   // NIC Rx ring size; 0 = 1024
	RcvBufBytes   int64 // fixed TCP receive buffer; 0 = autotune (max 6MB)
	SndBufBytes   int64 // send buffer; 0 = 4MB
}

// AllOptimizations returns the paper's fully optimized stack: TSO/GRO,
// jumbo frames, aRFS, DCA on, IOMMU off, CUBIC.
func AllOptimizations() Stack {
	return Stack{TSO: true, GSO: true, GRO: true, JumboFrames: true, ARFS: true, DCA: true, CC: "cubic"}
}

// NoOptimizations returns the paper's baseline configuration (GSO
// disabled as in their modified kernel, MTU 1500, worst-case steering).
func NoOptimizations() Stack {
	return Stack{DCA: true, CC: "cubic"}
}

func (s Stack) options() (core.Options, error) {
	steer := core.SteerWorstCase
	if s.ARFS {
		steer = core.SteerARFS
	}
	switch s.Steering {
	case "":
	case "arfs":
		steer = core.SteerARFS
	case "worst":
		steer = core.SteerWorstCase
	case "rss":
		steer = core.SteerRSSHash
	case "rfs":
		steer = core.SteerRFS
	case "rps":
		steer = core.SteerRPS
	case "same-numa":
		steer = core.SteerSameNUMA
	default:
		return core.Options{}, fmt.Errorf("hostsim: unknown steering %q", s.Steering)
	}
	return core.Options{
		TSO: s.TSO, GSO: s.GSO, GRO: s.GRO, LRO: s.LRO, Jumbo: s.JumboFrames,
		DCA: s.DCA, IOMMU: s.IOMMU, Steering: steer, CC: s.CC,
		ZeroCopyTx: s.ZeroCopyTx, ZeroCopyRx: s.ZeroCopyRx,
		DCAAwareDRS: s.DCAAwareDRS, RcvSchedulerK: s.RcvSchedulerK,
		RxRing:      s.RxDescriptors,
		RcvBufBytes: units.Bytes(s.RcvBufBytes),
		SndBufBytes: units.Bytes(s.SndBufBytes),
	}, nil
}

// Tuning exposes the simulator's internal model knobs for ablation
// studies. Zero values keep the calibrated defaults; -1 disables a
// mechanism where noted.
type Tuning struct {
	TSQBytes         int64         // per-connection qdisc bound (default 256KB)
	SchedGranularity time.Duration // scheduler wakeup granularity (default 250us)
	SleeperCredit    time.Duration // wakeup vruntime credit (default 50us)
	ModerationDelay  time.Duration // NIC IRQ coalescing delay (default 12us)
	ModerationFrames int           // NIC IRQ coalescing frame threshold (default 24)
	PagesetCap       int           // per-core pageset capacity (default 512; -1 = none)
	DCAHazardFactor  float64       // descriptor eviction hazard scale (default 0.035; -1 = off)
}

// Config describes one simulation run.
type Config struct {
	Stack  Stack
	Tuning *Tuning // nil = calibrated defaults

	// CostScale multiplies individual per-operation cycle costs of the
	// calibrated model (internal/cpumodel) by the given factors, keyed by
	// cost-table field name (see CostNames). Absent knobs keep their
	// calibrated defaults; unknown names are an error. This is the lever
	// for sensitivity analysis: cmd/validate sweeps one knob at a time
	// and re-checks every paper claim at each point.
	CostScale map[string]float64
	LinkGbps  int           // access link bandwidth; 0 = the testbed's 100
	LossRate  float64       // random drop probability at the switch
	ECNMarkKB int           // ECN marking threshold in KB (0 = off; for DCTCP)
	Warmup    time.Duration // excluded from measurement; 0 = 20ms
	Duration  time.Duration // measurement window; 0 = 30ms
	Seed      int64         // RNG seed; runs are deterministic per seed

	// Scheduler selects the simulation engine's event scheduler: "wheel"
	// (hierarchical timing wheel, the default) or "heap" (binary heap,
	// the reference implementation). The two produce byte-identical
	// results on every workload; the knob exists for differential testing
	// and benchmarking. "" means "wheel".
	Scheduler string

	// TraceEvents, when positive, records the most recent N data-path
	// events (writes, segments, deliveries, acks, retransmissions, NIC
	// drops and GRO flushes) into Result.Trace. TraceFlow restricts
	// recording to one flow id (flows are numbered from 1 in
	// connection-creation order; 0 = all).
	TraceEvents int
	TraceFlow   int32

	// TraceSpans additionally records per-core execution spans (softirq
	// and thread work items with their dominant Table-1 category) into
	// the trace; Result.WriteChromeTrace renders them for Perfetto.
	// Requires TraceEvents > 0; span events carry flow id 0, so combine
	// with TraceFlow 0.
	TraceSpans bool

	// Profile, when non-nil, attaches the simulated-cycle profiler: every
	// charged cycle is attributed to a host;softirq|thread;category;class
	// stack and every delivered packet's lifecycle latency is tracked
	// (Result.CycleProfile, Result.LatencyBreakdown, Result.WritePprof,
	// Result.WriteFolded). Profiling starts at the measurement window,
	// like all other accounting. A nil Profile allocates no profiler
	// state and costs nothing on the hot path, like a nil tracer.
	Profile *ProfileOptions

	// Telemetry, when non-nil, enables the time-resolved metrics layer:
	// hosts, NICs, cores, the cache and every TCP flow register named
	// counters and gauges that are sampled on a fixed simulated-time
	// interval into Result.Timeline. A nil Telemetry allocates no
	// telemetry state and costs nothing, like a nil tracer.
	Telemetry *Telemetry

	// Check, when non-nil, attaches the conservation-law invariant
	// checker: between simulation events it audits byte conservation
	// (wire, NIC and pool accounting), cycle conservation (Table-1
	// category cycles reconciled against the charge log and core busy
	// time), TCP sequence-space sanity, and cache-occupancy bounds. The
	// audits are pure reads, so a checked run follows the exact
	// trajectory of an unchecked one. By default the first violation
	// aborts Run with a simulated-time-stamped error; CheckOptions.Collect
	// gathers violations into Result.Violations instead. A nil Check
	// costs nothing.
	Check *CheckOptions

	// Inspect, when non-nil, attaches the wire-level inspector: per-link
	// packet captures serialized as pcapng (Result.WritePcap, readable in
	// Wireshark), tcp_probe-style congestion traces (Result.ProbeTrace)
	// and `ss -i`-style socket/queue snapshots (Result.SocketSnapshots).
	// Every inspector hook is a pure read, so an inspected run follows
	// the exact trajectory of an uninspected one — Check can stay armed
	// while capturing. A nil Inspect costs nothing on the hot path.
	Inspect *InspectOptions

	// Fabric, when non-nil, replaces the direct two-host link with a
	// single-stage switch fabric (a ToR): Hosts hosts, each attached to
	// its own port with a per-port egress buffer, an optional shared
	// buffer pool with dynamic-threshold drops, and per-port ECN marking
	// (threshold ECNMarkKB, as on the direct link). LossRate applies at
	// every egress serializer. Long-flow patterns then place connections
	// across hosts — incast opens one flow from each of hosts 1..H-1 into
	// host 0 — and Result.Hosts reports per-host stats. A nil Fabric keeps
	// the two-host direct link, bit-identical to previous releases; a
	// 2-host fabric with unbounded buffer is event-for-event identical to
	// the direct link (see DESIGN.md "Switch fabric").
	Fabric *FabricOptions

	// FabricObs, when non-nil, attaches the fabric observatory: an
	// INT-style in-band-telemetry layer over the switch fabric that stamps
	// every frame at ingress (queue depth and shared-buffer occupancy at
	// the admission verdict) and egress (mark/loss verdict, delivery),
	// maintains a per-port time-series (Result.FabricTimeline), keeps an
	// exact drop/mark attribution ledger (Result.PortReports — every lost
	// frame classified as shared-buffer admission drop vs. wire loss,
	// reconciling with the checker's per-port conservation rule), and
	// detects microbursts (Result.BurstEvents). Like the whole run it
	// covers warmup — slow-start bursts are the interesting ones. Every
	// hook is a pure read, so an observed run is byte-identical to an
	// unobserved one; Check can stay armed. Requires Config.Fabric. A nil
	// FabricObs costs nothing.
	FabricObs *FabricObsOptions

	// MsgTrace, when non-nil, attaches the end-to-end message tracer:
	// every application write is split into fixed-size messages whose
	// full journey — send-buffer wait, retransmission wait, NIC queue,
	// wire, Rx ring, GRO, TCP Rx and socket-queue dwell — is timed from
	// the write syscall to the read syscall that drains its last byte.
	// The run's Result gains a tail-attribution report
	// (Result.MessageLatency, Result.WriteTailReport) decomposing each
	// percentile band of end-to-end latency into per-stage means, and a
	// slowest-N exemplar export (Result.WriteSpans) as Chrome trace-event
	// JSON for Perfetto. Tracing covers the whole run including warmup
	// (like socket snapshots) and is a pure observer: an armed run is
	// bit-identical to an unarmed one. A nil MsgTrace costs nothing.
	MsgTrace *MsgTraceOptions
}

// MsgTraceOptions configures the message tracer (see Config.MsgTrace).
// The zero value traces every flow at its natural message size (the RPC
// request/response size, or 128KB iPerf write units for long flows),
// keeps the 8 slowest exemplars and caps retained records at 1<<20.
type MsgTraceOptions struct {
	// MsgBytes overrides the per-flow message size: each flow's byte
	// stream is cut into consecutive MsgBytes-sized messages. 0 keeps
	// the workload-derived default (RPCSize for RPC flows, 128KB for
	// long flows).
	MsgBytes int64
	// Slowest is the number of worst-latency exemplar messages kept with
	// full segment/recovery detail for span export (0 = 8).
	Slowest int
	// MaxMessages caps the per-message records retained for exact band
	// attribution (0 = 1<<20); completions beyond it still feed the
	// quantile histogram but count as truncated.
	MaxMessages int
}

// FabricOptions configures the switch-fabric topology (see Config.Fabric).
type FabricOptions struct {
	// Hosts is the number of hosts attached to the ToR, 2-256. Patterns
	// scale with it: incast and outcast open Hosts-1 flows, all-to-all
	// Hosts*(Hosts-1).
	Hosts int
	// SharedBufferKB bounds the switch's shared packet buffer (the sum of
	// all egress backlogs, in wire bytes). An ingress frame is admitted
	// only while its egress queue sits below the dynamic threshold
	// alpha*(buffer - occupancy); beyond it the frame is dropped and
	// counted in Result.Fabric.BufferDrops. 0 = unbounded.
	SharedBufferKB int
	// Alpha is the dynamic-threshold scale factor (0 = 1.0).
	Alpha float64
	// HostNames overrides the default host00..hostNN naming; must be
	// empty or exactly Hosts entries. Names label stats and traces only —
	// relabeling never changes the physics.
	HostNames []string
}

// FabricObsOptions configures the fabric observatory (see
// Config.FabricObs). The zero value samples every 100µs into a
// 4096-sample ring, opens microbursts at 128KB of egress backlog, keeps
// the top 4 contributing flows per burst and retains up to 1024 bursts.
type FabricObsOptions struct {
	// SampleInterval is the simulated time between per-port time-series
	// samples (0 = 100µs).
	SampleInterval time.Duration
	// MaxSamples bounds the time-series ring (0 = 4096).
	MaxSamples int
	// BurstThresholdKB opens a microburst when a frame enqueues into an
	// egress backlog at or above this many KB of wire bytes; the burst
	// closes when the queue drains to half the threshold (0 = 128).
	BurstThresholdKB int
	// BurstFlows is the number of top contributing flows kept per burst
	// event (0 = 4).
	BurstFlows int
	// MaxBursts caps retained burst events; further bursts are detected
	// and counted per port but not retained (0 = 1024).
	MaxBursts int
}

// PortReport is one fabric port's end-of-run attribution-ledger line (see
// Config.FabricObs); fabricobs.PortReport documents the exact identities.
type PortReport = fabricobs.PortReport

// BurstEvent is one detected microburst on a fabric egress port (see
// Config.FabricObs).
type BurstEvent = fabricobs.BurstEvent

// FabricStats summarizes the switch fabric's activity over the whole run,
// warmup included (drops during slow start count too). Nil on direct-link
// runs.
type FabricStats struct {
	InFrames        int64 // frames offered to ingress ports
	Delivered       int64 // frames handed to hosts by egress links
	BufferDrops     int64 // shared-buffer (dynamic-threshold) admission drops
	BufferDropBytes int64 // payload bytes lost to buffer drops
	LossDrops       int64 // Bernoulli loss at the egress serializers
	Marked          int64 // CE marks
}

// CheckOptions configures the invariant checker (see Config.Check). The
// zero value audits every 500µs of simulated time and fails fast.
type CheckOptions struct {
	// Interval between periodic audits; 0 = 500µs of simulated time.
	Interval time.Duration
	// Collect accumulates violations into Result.Violations instead of
	// aborting the run at the first one.
	Collect bool
	// MaxViolations caps Collect-mode accumulation; 0 = 64.
	MaxViolations int
}

// InspectOptions configures the wire-level inspector (see Config.Inspect).
// Pcap, Probe and SS select the exporters; all three false (the zero
// value) enables all of them.
type InspectOptions struct {
	Pcap  bool // capture both link directions into Result.PacketCaptures
	Probe bool // tcp_probe-style congestion traces into Result.ProbeTrace
	SS    bool // socket/queue snapshots into Result.SocketSnapshots

	// SnapLen bounds the bytes kept per captured packet (0 = 128, enough
	// for the 66 synthesized header bytes plus a slice of payload).
	SnapLen int
	// MaxPackets bounds each direction's capture (0 = 1<<20); further
	// packets count as truncated.
	MaxPackets int
	// MaxProbeEvents bounds the congestion trace (0 = 1<<20).
	MaxProbeEvents int
	// SSInterval is the snapshot sampling period (0 = 100µs); snapshots
	// cover the whole run, warmup included, so slow start is visible.
	SSInterval time.Duration
	// SSMaxSamples bounds the snapshot timeline ring (0 = 4096).
	SSMaxSamples int
}

// Violation is one invariant breach observed by the checker: the
// simulated time of the audit, the breached rule's name, and a pointed
// diagnostic. It implements error.
type Violation = check.Violation

// ProfileOptions configures the cycle profiler (see Config.Profile). The
// zero value classifies flows by workload kind ("long"/"rpc"); set
// FlowClasses to override the flow-id → class labeling.
type ProfileOptions = profile.Options

// CycleStack is one aggregated profiler attribution stack, root first
// (host, softirq|thread, Table-1 category, then flow class when the
// charge was flow-attributed).
type CycleStack struct {
	Frames []string
	Cycles int64
}

// LatencyStage is one row of the per-packet latency breakdown.
type LatencyStage struct {
	Stage string        // sndbuf, nic_tx, wire, rx_ring, gro, tcp_rx, sock_queue, total
	Count int64         // delivered SKBs sampled
	Mean  time.Duration // per-stage means sum exactly to the total mean
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
}

// LatencyBreakdown is the run's Fig. 9 equivalent: time spent by each
// delivered packet in every stage of the host data path.
type LatencyBreakdown struct {
	Stages  []LatencyStage
	Dropped int64 // SKBs with incomplete stamps (pre-warmup writes)

	text string
}

// Format renders the breakdown as an aligned text table with each
// quantile in both wall time and simulated cycles. Byte-deterministic
// for a given run.
func (b *LatencyBreakdown) Format() string { return b.text }

// TailStage is one stage's mean dwell time within a percentile band.
type TailStage struct {
	Stage string        // canonical stage name (package stage message order)
	Mean  time.Duration // mean time the band's messages spent in the stage
}

// TailBand is one percentile band of end-to-end message latency with its
// per-stage attribution: only the messages whose total latency ranks
// inside the band contribute, so comparing bands shows which stages
// create the tail.
type TailBand struct {
	Band   string // "p0-p50", "p50-p90", "p90-p99", "p99-p999", "p999-max"
	Count  int64
	Total  time.Duration // mean end-to-end latency of the band's messages
	Stages []TailStage   // means sum exactly to Total
}

// MessageLatency is the run's tail-attribution report when
// Config.MsgTrace was set: end-to-end message latency quantiles plus the
// per-band stage decomposition.
type MessageLatency struct {
	Count     int64 // completed messages (including truncated)
	Dropped   int64 // messages with incomplete stamps (pre-attach writes)
	Truncated int64 // completions beyond MaxMessages (quantiles only)
	P50       time.Duration
	P90       time.Duration
	P99       time.Duration
	P999      time.Duration
	Max       time.Duration
	Bands     []TailBand

	text string
}

// Format renders the report as an aligned text table, byte-deterministic
// for a given run.
func (m *MessageLatency) Format() string { return m.text }

// MsgRecord is one completed message's exact latency decomposition (ns
// per stage, stage.Message order); see Result.MessageRecords.
type MsgRecord = mtrace.Record

// Telemetry configures the sampling layer (see Config.Telemetry).
type Telemetry struct {
	// SampleInterval is the simulated time between registry snapshots
	// (0 = 100µs).
	SampleInterval time.Duration
	// MaxSamples bounds the timeline ring; the oldest samples are
	// evicted beyond it (0 = 4096).
	MaxSamples int
}

// Timeline is the sampled multi-metric timeseries produced when
// Config.Telemetry is set: one column per metric, one row per sample.
// It dumps as CSV (WriteCSV) or JSON lines (WriteJSONL), and Column
// extracts one metric's series.
type Timeline = telemetry.Timeline

// PacketCapture is one link direction's recorded packet stream (see
// Config.Inspect); inspect.Capture documents the record layout.
type PacketCapture = inspect.Capture

// ProbeTrace is the run's tcp_probe-style congestion trace (see
// Config.Inspect); inspect.ProbeTrace documents the record layout.
type ProbeTrace = inspect.ProbeTrace

// FlowStats is one connection's terminal TCP state at the end of the run:
// the sender-side counters `ss -i` would print on teardown. Collected for
// every run — inspection enabled or not — by pure reads after the horizon.
type FlowStats struct {
	Host            string // transmitting side: "sender" or "receiver"
	Flow            int32  // tx flow id (flows are numbered from 1)
	CC              string // congestion control algorithm name
	SentBytes       int64  // first transmissions
	RetransBytes    int64
	Retransmits     int64
	FastRetransmits int64
	Timeouts        int64
	DeliveredBytes  int64 // handed to the peer application in order
	SRTT            time.Duration
	RTO             time.Duration
	Cwnd            int64 // final congestion window, bytes
	Ssthresh        int64 // final slow-start threshold, bytes (0 for BBR)
}

// TraceEvent is one recorded data-path occurrence (see Config.TraceEvents).
// A and B are kind-specific: sequence/length for data events, cumulative
// ack/window for "ack-sent".
type TraceEvent struct {
	At   time.Duration // since simulation start
	Host string        // "sender" or "receiver"
	Core int
	Flow int32
	Kind string // app-write, app-read, tx-segment, retransmit, deliver-skb, ack-sent
	A, B int64
}

// Pattern names the Fig. 2 traffic patterns.
type Pattern string

// The five traffic patterns.
const (
	PatternSingle   Pattern = "single"
	PatternOneToOne Pattern = "one-to-one"
	PatternIncast   Pattern = "incast"
	PatternOutcast  Pattern = "outcast"
	PatternAllToAll Pattern = "all-to-all"
)

// Workload describes the applications driving the stack.
type Workload struct {
	Kind    string  // "long", "rpc", "mixed"
	Pattern Pattern // long flows: traffic pattern
	N       int     // long flows: scale (flows, or grid side for all-to-all)

	RPCClients int   // rpc: number of client cores
	RPCSize    int64 // rpc & mixed: request/response bytes

	MixedShort int // mixed: short (RPC) connections sharing the core
	// Segregate places the mixed workload's short flows on their own
	// core instead of sharing the long flow's (the paper's §4
	// class-segregated scheduling proposal).
	Segregate bool

	// RemoteNUMA places the applications on a NIC-remote NUMA node (the
	// Fig. 4 / Fig. 10c experiments). Applies to single-flow long and rpc
	// workloads.
	RemoteNUMA bool
}

// LongFlowWorkload builds an iPerf-style bulk-transfer workload.
func LongFlowWorkload(p Pattern, n int) Workload {
	return Workload{Kind: "long", Pattern: p, N: n}
}

// RPCIncastWorkload builds the §3.7 short-flow scenario: nClients
// ping-pong clients against one server core.
func RPCIncastWorkload(nClients int, size int64) Workload {
	return Workload{Kind: "rpc", RPCClients: nClients, RPCSize: size}
}

// MixedWorkload builds the Fig. 11 scenario: one long flow plus nShort
// RPC connections sharing one core on each side.
func MixedWorkload(nShort int, size int64) Workload {
	return Workload{Kind: "mixed", MixedShort: nShort, RPCSize: size}
}

// HostStats reports one host's measurements over the window.
type HostStats struct {
	BusyCores       float64            // total CPU busy time / window
	MaxCoreUtil     float64            // utilization of the busiest core
	Breakdown       map[string]float64 // Table-1 category -> fraction of busy cycles
	BreakdownCycles map[string]int64   // Table-1 category -> raw simulated cycles
	CacheMissRate   float64            // receive-copy cache miss rate
	LatencyAvg      time.Duration      // NAPI -> start of copy, mean
	LatencyP99      time.Duration      // NAPI -> start of copy, p99
	SKBAvgBytes     float64            // mean post-GRO data skb size
	SKB64KBShare    float64            // fraction of data skbs at >= 60KB
	CopiedGB        float64            // bytes delivered to applications
	Retransmits     int64
	AcksSent        int64
	NICDrops        int64
}

// Result is the outcome of one Run.
type Result struct {
	Duration              time.Duration
	ThroughputGbps        float64 // application goodput (both directions)
	ThroughputPerCoreGbps float64 // goodput / bottleneck-host busy cores
	Bottleneck            string  // name of the most CPU-saturated host
	Sender                HostStats
	Receiver              HostStats

	// Hosts reports every host's stats in host order (direct link: sender
	// then receiver; fabric: port order). Sender and Receiver above are
	// the workload's primary transmitting and receiving hosts.
	Hosts []HostStats

	// Fabric summarizes switch activity when Config.Fabric was set (nil
	// on direct-link runs).
	Fabric       *FabricStats
	RPCCompleted int64   // finished ping-pongs (rpc/mixed)
	LongFlowGbps float64 // long-flow-only goodput (mixed workloads)
	RPCGbps      float64 // rpc-only goodput (rpc/mixed workloads)

	// FlowGbps lists each long flow's goodput; FairnessIndex is Jain's
	// index over them (1 = perfectly fair).
	FlowGbps      []float64
	FairnessIndex float64

	// Trace holds the recorded data-path events when Config.TraceEvents
	// was set, oldest first, across both hosts.
	Trace []TraceEvent

	// Timeline holds the sampled metric timeseries when Config.Telemetry
	// was set (nil otherwise).
	Timeline *Timeline

	// CycleProfile holds the aggregated attribution stacks when
	// Config.Profile was set (nil otherwise), sorted by stack. Summing
	// Cycles per category reproduces each host's BreakdownCycles exactly.
	CycleProfile []CycleStack

	// LatencyBreakdown holds the per-packet stage latency table when
	// Config.Profile was set (nil otherwise).
	LatencyBreakdown *LatencyBreakdown

	// Violations holds the invariant breaches observed when Config.Check
	// was set with Collect; always empty on a clean run, nil when
	// checking was off.
	Violations []Violation

	// Flows holds every connection's terminal TCP state (both hosts'
	// transmitting sides, sender first, tx-flow order). Always populated.
	Flows []FlowStats

	// PacketCaptures holds the per-direction packet captures when
	// Config.Inspect enabled pcap (sender->receiver first); serialize
	// them with WritePcap. Nil otherwise.
	PacketCaptures []*PacketCapture

	// ProbeTrace holds the tcp_probe-style congestion trace when
	// Config.Inspect enabled it (nil otherwise).
	ProbeTrace *ProbeTrace

	// SocketSnapshots holds the ss-style socket/queue timeline when
	// Config.Inspect enabled it (nil otherwise). Unlike Timeline it
	// covers the whole run including warmup.
	SocketSnapshots *Timeline

	// MessageLatency holds the tail-attribution report when
	// Config.MsgTrace was set (nil otherwise). Like SocketSnapshots it
	// covers the whole run including warmup, so slow-start stragglers
	// show up in the tail.
	MessageLatency *MessageLatency

	// FabricTimeline holds the fabric observatory's per-port sampled
	// time-series (occupancy, backlog, utilization, ECN-mark rate, drops)
	// when Config.FabricObs was set (nil otherwise). Like SocketSnapshots
	// it covers the whole run including warmup.
	FabricTimeline *Timeline

	// PortReports holds the observatory's per-port drop/mark attribution
	// ledger when Config.FabricObs was set (nil otherwise), in port order.
	PortReports []PortReport

	// BurstEvents holds the detected microbursts when Config.FabricObs
	// was set, ordered by start time (empty if none, nil when off).
	BurstEvents []BurstEvent

	traceEvents []trace.Event       // raw events for WriteChromeTrace
	prof        *profile.Profiler   // backs WritePprof/WriteFolded
	mt          *mtrace.Tracer      // backs WriteSpans/WriteTailReport
	fobs        *fabricobs.Observer // backs WriteFabricReport/WriteFabricTrace
}

// WritePprof writes the cycle profile as a gzipped pprof profile.proto
// viewable with `go tool pprof` (sample types: cycles, time). Errors
// unless the run had Config.Profile set.
func (r *Result) WritePprof(w io.Writer) error {
	if r.prof == nil {
		return fmt.Errorf("hostsim: run had no Config.Profile")
	}
	return r.prof.WritePprof(w)
}

// WriteFolded writes the cycle profile as folded stacks for
// flamegraph.pl. Errors unless the run had Config.Profile set.
func (r *Result) WriteFolded(w io.Writer) error {
	if r.prof == nil {
		return fmt.Errorf("hostsim: run had no Config.Profile")
	}
	return r.prof.WriteFolded(w)
}

// WritePcap writes both packet captures as one Wireshark-readable pcapng
// file (one interface per link direction, packets in timestamp order,
// nanosecond resolution). Errors unless the run had Config.Inspect with
// pcap enabled.
func (r *Result) WritePcap(w io.Writer) error {
	if len(r.PacketCaptures) == 0 {
		return fmt.Errorf("hostsim: run had no Config.Inspect with pcap enabled")
	}
	return inspect.WritePcap(w, r.PacketCaptures...)
}

// WriteProbeCSV writes the congestion trace as CSV. Errors unless the run
// had Config.Inspect with probe tracing enabled.
func (r *Result) WriteProbeCSV(w io.Writer) error {
	if r.ProbeTrace == nil {
		return fmt.Errorf("hostsim: run had no Config.Inspect with probe tracing enabled")
	}
	return r.ProbeTrace.WriteCSV(w)
}

// WriteProbeJSONL writes the congestion trace as JSON lines. Errors unless
// the run had Config.Inspect with probe tracing enabled.
func (r *Result) WriteProbeJSONL(w io.Writer) error {
	if r.ProbeTrace == nil {
		return fmt.Errorf("hostsim: run had no Config.Inspect with probe tracing enabled")
	}
	return r.ProbeTrace.WriteJSONL(w)
}

// WriteSocketCSV writes the ss-style socket/queue snapshot timeline as
// CSV. Errors unless the run had Config.Inspect with snapshots enabled.
func (r *Result) WriteSocketCSV(w io.Writer) error {
	if r.SocketSnapshots == nil {
		return fmt.Errorf("hostsim: run had no Config.Inspect with socket snapshots enabled")
	}
	return r.SocketSnapshots.WriteCSV(w)
}

// WriteTailReport writes the tail-attribution report as the aligned text
// table of MessageLatency.Format. Errors unless the run had
// Config.MsgTrace set.
func (r *Result) WriteTailReport(w io.Writer) error {
	if r.MessageLatency == nil {
		return fmt.Errorf("hostsim: run had no Config.MsgTrace")
	}
	_, err := io.WriteString(w, r.MessageLatency.Format())
	return err
}

// WriteSpans writes the slowest-N exemplar messages as a Chrome
// trace-event JSON array, loadable in Perfetto or chrome://tracing: each
// exemplar becomes a process with its total span, the telescoping stage
// spans, and every (re)transmission and loss-recovery event as instants.
// Errors unless the run had Config.MsgTrace set.
func (r *Result) WriteSpans(w io.Writer) error {
	if r.mt == nil {
		return fmt.Errorf("hostsim: run had no Config.MsgTrace")
	}
	return r.mt.WriteSpans(w)
}

// WriteFabricReport writes the fabric attribution ledger as CSV: a
// per-port section (the exact drop/mark classification and hop-latency
// quantiles), a blank line, then the microburst section. Errors unless
// the run had Config.FabricObs set.
func (r *Result) WriteFabricReport(w io.Writer) error {
	if r.fobs == nil {
		return fmt.Errorf("hostsim: run had no Config.FabricObs")
	}
	return fabricobs.WriteReportCSV(w, r.PortReports, r.BurstEvents)
}

// WriteFabricReportJSONL writes the ledger as JSON lines (one
// {"type":"port"} object per port, then one {"type":"burst"} object per
// burst). Errors unless the run had Config.FabricObs set.
func (r *Result) WriteFabricReportJSONL(w io.Writer) error {
	if r.fobs == nil {
		return fmt.Errorf("hostsim: run had no Config.FabricObs")
	}
	return fabricobs.WriteReportJSONL(w, r.PortReports, r.BurstEvents)
}

// FormatFabricReport renders the ledger and bursts as an aligned text
// table, byte-deterministic for a given run (empty when FabricObs was
// off).
func (r *Result) FormatFabricReport() string {
	if r.fobs == nil {
		return ""
	}
	return fabricobs.FormatReport(r.PortReports, r.BurstEvents)
}

// WriteFabricTrace renders the observatory as a Chrome trace-event JSON
// array, loadable in Perfetto or chrome://tracing: per-port queue-depth
// counter tracks plus every microburst as a duration span on its port's
// row. Errors unless the run had Config.FabricObs set.
func (r *Result) WriteFabricTrace(w io.Writer) error {
	if r.fobs == nil {
		return fmt.Errorf("hostsim: run had no Config.FabricObs")
	}
	names := make([]string, len(r.PortReports))
	for i, p := range r.PortReports {
		names[i] = p.Host
	}
	return fabricobs.WriteTrace(w, names, r.FabricTimeline, r.BurstEvents)
}

// MessageRecords returns the retained per-message latency records
// (completion order), nil when the run had no Config.MsgTrace. Each
// record's stage nanoseconds sum exactly to its total.
func (r *Result) MessageRecords() []MsgRecord {
	if r.mt == nil {
		return nil
	}
	return r.mt.Records()
}

// WriteChromeTrace renders the recorded trace as a Chrome trace-event
// JSON array, loadable in Perfetto or chrome://tracing: hosts become
// processes, cores become threads, execution spans (Config.TraceSpans)
// become duration events and data-path events become instants. Writing
// an empty trace produces a valid empty JSON array.
func (r *Result) WriteChromeTrace(w io.Writer) error {
	return telemetry.WriteChromeTrace(w, r.traceEvents)
}

// Run executes one simulation and reports the measured window.
func Run(cfg Config, wl Workload) (*Result, error) {
	if cfg.Warmup == 0 {
		cfg.Warmup = 20 * time.Millisecond
	}
	if cfg.Duration == 0 {
		cfg.Duration = 30 * time.Millisecond
	}
	if cfg.LossRate < 0 || cfg.LossRate > 1 {
		return nil, fmt.Errorf("hostsim: loss rate %v outside [0,1]", cfg.LossRate)
	}
	opts, err := cfg.Stack.options()
	if err != nil {
		return nil, err
	}
	if tn := cfg.Tuning; tn != nil {
		opts.TSQBytes = units.Bytes(tn.TSQBytes)
		opts.SchedGranularity = tn.SchedGranularity
		opts.SleeperCredit = tn.SleeperCredit
		opts.ModerationDelay = tn.ModerationDelay
		opts.ModerationFrames = tn.ModerationFrames
		opts.PagesetCap = tn.PagesetCap
		opts.DCAHazardFactor = tn.DCAHazardFactor
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}

	sched := cfg.Scheduler
	if sched == "" {
		sched = sim.SchedWheel
	}
	if sched != sim.SchedWheel && sched != sim.SchedHeap {
		return nil, fmt.Errorf("hostsim: unknown Scheduler %q (want %q or %q)",
			cfg.Scheduler, sim.SchedWheel, sim.SchedHeap)
	}
	eng := sim.NewEngineSched(cfg.Seed, sched)
	costs := cpumodel.Default()
	// Apply cost scales in sorted-key order so a bad map reports the
	// same first error on every run.
	for _, name := range sortedKeys(cfg.CostScale) {
		if err := costs.Scale(name, cfg.CostScale[name]); err != nil {
			return nil, fmt.Errorf("hostsim: %w", err)
		}
	}
	spec := topology.Default()
	if cfg.LinkGbps < 0 {
		return nil, fmt.Errorf("hostsim: negative LinkGbps")
	}
	if cfg.LinkGbps > 0 {
		spec.LinkRate = units.BitRate(cfg.LinkGbps) * units.Gbps
	}
	// Topology: a direct two-host link by default, or N hosts on a switch
	// fabric when Config.Fabric is set.
	var (
		hosts   []*core.Host
		cluster *core.Cluster
		taps    []linkTap // named link directions for the inspector
	)
	if fo := cfg.Fabric; fo == nil {
		sender := core.NewHost("sender", eng, spec, costs, opts)
		receiver := core.NewHost("receiver", eng, spec, costs, opts)
		ab, ba := core.Connect(sender, receiver)
		ab.SetLossRate(cfg.LossRate)
		if cfg.ECNMarkKB > 0 {
			ab.SetECNThreshold(units.Bytes(cfg.ECNMarkKB) * units.KB)
			ba.SetECNThreshold(units.Bytes(cfg.ECNMarkKB) * units.KB)
		}
		hosts = []*core.Host{sender, receiver}
		taps = []linkTap{{"sender->receiver", ab}, {"receiver->sender", ba}}
	} else {
		if fo.Hosts < 2 || fo.Hosts > 256 {
			return nil, fmt.Errorf("hostsim: Fabric.Hosts %d outside [2,256]", fo.Hosts)
		}
		if fo.SharedBufferKB < 0 {
			return nil, fmt.Errorf("hostsim: negative Fabric.SharedBufferKB")
		}
		if fo.Alpha < 0 {
			return nil, fmt.Errorf("hostsim: negative Fabric.Alpha")
		}
		if len(fo.HostNames) != 0 && len(fo.HostNames) != fo.Hosts {
			return nil, fmt.Errorf("hostsim: %d Fabric.HostNames for %d hosts", len(fo.HostNames), fo.Hosts)
		}
		hosts = make([]*core.Host, fo.Hosts)
		for i := range hosts {
			name := fmt.Sprintf("host%03d", i)
			if len(fo.HostNames) > 0 {
				name = fo.HostNames[i]
			}
			hosts[i] = core.NewHost(name, eng, spec, costs, opts)
		}
		cluster = core.ConnectFabric(hosts, fabric.Config{
			LinkRate:     spec.LinkRate,
			SharedBuffer: units.Bytes(fo.SharedBufferKB) * units.KB,
			Alpha:        fo.Alpha,
			ECNThreshold: units.Bytes(cfg.ECNMarkKB) * units.KB,
			LossRate:     cfg.LossRate,
		})
		for i, h := range hosts {
			taps = append(taps, linkTap{"fabric->" + h.Name(), cluster.Fabric().Port(i).Out()})
		}
	}

	var checker *check.Checker
	if cfg.Check != nil {
		if cfg.Check.Interval < 0 {
			return nil, fmt.Errorf("hostsim: negative Check.Interval")
		}
		checker = check.New(eng, check.Options{
			Interval:      cfg.Check.Interval,
			Collect:       cfg.Check.Collect,
			MaxViolations: cfg.Check.MaxViolations,
		})
		if cluster != nil {
			core.AttachClusterChecker(checker, cluster)
		} else {
			core.AttachChecker(checker, hosts[0], hosts[1], taps[0].link, taps[1].link)
		}
		checker.Start()
	}

	var tracer *trace.Tracer
	if cfg.TraceEvents > 0 {
		tracer = trace.New(cfg.TraceEvents)
		tracer.FilterFlow(skb.FlowID(cfg.TraceFlow))
		for _, h := range hosts {
			h.SetTracer(tracer)
			if cfg.TraceSpans {
				h.EnableSpanTrace()
			}
		}
	} else if cfg.TraceSpans {
		return nil, fmt.Errorf("hostsim: TraceSpans requires TraceEvents > 0")
	}

	var sampler *telemetry.Sampler
	if cfg.Telemetry != nil {
		interval := cfg.Telemetry.SampleInterval
		if interval == 0 {
			interval = 100 * time.Microsecond
		}
		if interval < 0 {
			return nil, fmt.Errorf("hostsim: negative Telemetry.SampleInterval")
		}
		maxSamples := cfg.Telemetry.MaxSamples
		if maxSamples == 0 {
			maxSamples = 4096
		}
		if maxSamples < 0 {
			return nil, fmt.Errorf("hostsim: negative Telemetry.MaxSamples")
		}
		reg := telemetry.NewRegistry()
		for _, h := range hosts {
			h.EnableTelemetry(reg)
		}
		if cluster != nil {
			// Fabric runs expose switch state in the same timeline as the
			// host gauges, so one -telemetry-out artifact covers both.
			cluster.Fabric().RegisterTelemetry(reg, "fabric/")
		}
		sampler = telemetry.NewSampler(eng, reg, interval, maxSamples)
	}

	var run *builtWorkload
	if cluster != nil {
		run, err = buildFabricWorkload(cluster, wl)
	} else {
		run, err = buildWorkload(hosts[0], hosts[1], wl)
	}
	if err != nil {
		return nil, err
	}

	var mt *mtrace.Tracer
	if cfg.MsgTrace != nil {
		mo := cfg.MsgTrace
		if mo.MsgBytes < 0 || mo.Slowest < 0 || mo.MaxMessages < 0 {
			return nil, fmt.Errorf("hostsim: negative MsgTrace option")
		}
		sizes := msgSizes(run, mo.MsgBytes)
		// Workload setup can execute a first write synchronously at build
		// time (thread wakeups dispatch immediately), before the tracer
		// attaches; record each flow's committed stream offset so message
		// numbering stays aligned with TCP sequence space.
		starts := make(map[skb.FlowID]int64, len(sizes))
		for _, h := range hosts {
			h.ForEachEndpoint(func(ep *core.Endpoint) {
				if _, ok := sizes[ep.TxFlow()]; ok {
					starts[ep.TxFlow()] = ep.Conn().AppLimit()
				}
			})
		}
		mt = mtrace.New(mtrace.Options{
			MsgBytes:    sizes,
			Start:       starts,
			Slowest:     mo.Slowest,
			MaxMessages: mo.MaxMessages,
		})
		for _, h := range hosts {
			h.EnableMsgTrace(mt)
		}
		// Loss-recovery context for the exemplars rides the existing
		// tcp_probe emit sites; AddProbe composes with the inspector's
		// congestion trace when both are armed.
		if hook := mt.ProbeHook(); hook != nil {
			for _, h := range hosts {
				h.ForEachEndpoint(func(ep *core.Endpoint) { ep.Conn().AddProbe(hook) })
			}
		}
	}

	var prof *profile.Profiler
	if cfg.Profile != nil {
		popts := *cfg.Profile
		if popts.FlowClasses == nil {
			popts.FlowClasses = flowClasses(run)
		}
		prof = profile.New(popts, spec.Frequency)
		for _, h := range hosts {
			h.EnableProfiler(prof)
		}
	}

	// The inspector attaches after the workload so the connections it
	// hooks exist, and before the warmup run so captures and probe traces
	// include slow start.
	insp, err := attachInspector(cfg.Inspect, eng, hosts, taps)
	if err != nil {
		return nil, err
	}

	// The fabric observatory attaches after the inspector (its link taps
	// chain onto the inspector's, preserving both) and before the warmup
	// run so bursts and hop latencies cover slow start.
	var fobs *fabricobs.Observer
	if fo := cfg.FabricObs; fo != nil {
		if cluster == nil {
			return nil, fmt.Errorf("hostsim: FabricObs requires Fabric")
		}
		if fo.SampleInterval < 0 || fo.MaxSamples < 0 || fo.BurstThresholdKB < 0 ||
			fo.BurstFlows < 0 || fo.MaxBursts < 0 {
			return nil, fmt.Errorf("hostsim: negative FabricObs option")
		}
		names := make([]string, len(hosts))
		for i, h := range hosts {
			names[i] = h.Name()
		}
		fobs = fabricobs.New(eng, cluster.Fabric(), names, fabricobs.Options{
			SampleInterval: fo.SampleInterval,
			MaxSamples:     fo.MaxSamples,
			BurstThreshold: units.Bytes(fo.BurstThresholdKB) * units.KB,
			BurstFlows:     fo.BurstFlows,
			MaxBursts:      fo.MaxBursts,
		})
	}

	if err := guardFailure(checker, func() { eng.Run(sim.Time(cfg.Warmup)) }); err != nil {
		return nil, err
	}
	for _, h := range hosts {
		h.ResetMetrics()
	}
	// The profiler observes charges at the same point core accounting
	// merges them (work-item completion), so resetting it here — next to
	// ResetMetrics — makes its totals reconcile exactly with the window's
	// category accounting.
	prof.Reset()
	run.snapshot()
	if sampler != nil {
		// First sample at the start of the measurement window, right
		// after the warm-up reset.
		sampler.Start(sim.Time(cfg.Warmup))
	}
	if err := guardFailure(checker, func() {
		eng.Run(sim.Time(cfg.Warmup + cfg.Duration))
		if checker != nil {
			// Drain-point audit at the horizon, so a leak in the final
			// stretch is caught even if the periodic timer missed it.
			checker.Audit()
		}
	}); err != nil {
		return nil, err
	}

	if fobs != nil {
		fobs.Finalize()
	}

	res := assemble(cfg, hosts, cluster, run)
	if checker != nil {
		res.Violations = checker.Violations()
	}
	if insp != nil {
		insp.attach(res)
	}
	if sampler != nil {
		res.Timeline = sampler.Timeline()
	}
	if fobs != nil {
		res.fobs = fobs
		res.FabricTimeline = fobs.Timeline()
		res.PortReports = fobs.PortReports()
		res.BurstEvents = fobs.Bursts()
	}
	if prof != nil {
		res.prof = prof
		for _, s := range prof.Stacks() {
			res.CycleProfile = append(res.CycleProfile, CycleStack{Frames: s.Frames, Cycles: int64(s.Cycles)})
		}
		pb := prof.Lifecycle().Breakdown(prof.Freq())
		lb := &LatencyBreakdown{Dropped: pb.Dropped, text: pb.Format()}
		for _, s := range pb.Stages {
			lb.Stages = append(lb.Stages, LatencyStage{
				Stage: s.Stage, Count: s.Count,
				Mean: time.Duration(s.MeanNS), P50: time.Duration(s.P50NS),
				P90: time.Duration(s.P90NS), P99: time.Duration(s.P99NS),
			})
		}
		res.LatencyBreakdown = lb
	}
	if mt != nil {
		res.mt = mt
		s := mt.Summary()
		ml := &MessageLatency{
			Count: s.Count, Dropped: s.Dropped, Truncated: s.Truncated,
			P50: time.Duration(s.P50), P90: time.Duration(s.P90),
			P99: time.Duration(s.P99), P999: time.Duration(s.P999),
			Max:  time.Duration(s.Max),
			text: s.Format(),
		}
		for _, b := range s.Bands {
			tb := TailBand{Band: b.Name, Count: b.Count, Total: time.Duration(b.MeanTotal)}
			for i, v := range b.Stages {
				tb.Stages = append(tb.Stages, TailStage{
					Stage: stage.Message[i].String(), Mean: time.Duration(v),
				})
			}
			ml.Bands = append(ml.Bands, tb)
		}
		res.MessageLatency = ml
	}
	if tracer != nil {
		res.traceEvents = tracer.Events()
		for _, e := range res.traceEvents {
			res.Trace = append(res.Trace, TraceEvent{
				At:   e.At.Duration(),
				Host: e.Host, Core: e.Core, Flow: int32(e.Flow),
				Kind: e.Kind.String(), A: e.A, B: e.B,
			})
		}
	}
	return res, nil
}

// CostNames lists the valid Config.CostScale keys: every scalar knob of
// the calibrated per-operation cycle-cost model, sorted.
func CostNames() []string { return cpumodel.CostNames() }

func sortedKeys(m map[string]float64) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// guardFailure runs fn, converting a fail-fast invariant panic into the
// checker's error. With no checker attached it is a plain call: any panic
// propagates, as before.
func guardFailure(checker *check.Checker, fn func()) (err error) {
	if checker == nil {
		fn()
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(*check.Failure)
			if !ok {
				panic(r)
			}
			err = fmt.Errorf("hostsim: %w", f)
		}
	}()
	fn()
	return nil
}

func assemble(cfg Config, hosts []*core.Host, cluster *core.Cluster, run *builtWorkload) *Result {
	window := cfg.Duration
	res := &Result{Duration: window}
	res.Hosts = make([]HostStats, len(hosts))
	var copied units.Bytes
	for i, h := range hosts {
		res.Hosts[i] = hostStats(h, window)
		copied += h.Copied()
	}
	ri := run.receiverIdx
	res.Sender = res.Hosts[run.senderIdx]
	res.Receiver = res.Hosts[ri]
	res.ThroughputGbps = units.RateOf(copied, window).Gigabits()
	// The bottleneck is the host whose busiest core is most saturated
	// (the paper's "CPU utilization at the bottleneck"); ties resolve to
	// the primary receiving host, then host order.
	bi := ri
	for i := range hosts {
		if i != ri && res.Hosts[i].MaxCoreUtil > res.Hosts[bi].MaxCoreUtil {
			bi = i
		}
	}
	res.Bottleneck = hosts[bi].Name()
	if res.Hosts[bi].BusyCores > 0 {
		res.ThroughputPerCoreGbps = res.ThroughputGbps / res.Hosts[bi].BusyCores
	}
	res.RPCCompleted, res.LongFlowGbps, res.RPCGbps = run.deltas(window)
	res.FlowGbps = run.perFlow(window)
	res.FairnessIndex = jain(res.FlowGbps)
	for _, h := range hosts {
		res.Flows = append(res.Flows, collectFlowStats(h)...)
	}
	if cluster != nil {
		tot := cluster.Fabric().Totals()
		res.Fabric = &FabricStats{
			InFrames: tot.In, Delivered: tot.Delivered,
			BufferDrops: tot.BufDropped, BufferDropBytes: int64(tot.BufDroppedBytes),
			LossDrops: tot.LossDropped, Marked: tot.Marked,
		}
	}
	return res
}

// collectFlowStats reads each local connection's terminal TCP state after
// the horizon — pure reads, performed for every run.
func collectFlowStats(h *core.Host) []FlowStats {
	var out []FlowStats
	h.ForEachEndpoint(func(ep *core.Endpoint) {
		conn := ep.Conn()
		st := conn.Stats()
		out = append(out, FlowStats{
			Host: h.Name(), Flow: int32(ep.TxFlow()), CC: conn.CC().Name(),
			SentBytes:       int64(st.SentBytes),
			RetransBytes:    int64(st.RetransBytes),
			Retransmits:     st.Retransmits,
			FastRetransmits: st.FastRetransmit,
			Timeouts:        st.Timeouts,
			DeliveredBytes:  int64(st.DeliveredBytes),
			SRTT:            conn.SRTT(),
			RTO:             conn.RTO(),
			Cwnd:            int64(conn.CC().Cwnd()),
			Ssthresh:        int64(conn.CC().Ssthresh()),
		})
	})
	return out
}

func hostStats(h *core.Host, window time.Duration) HostStats {
	sys := h.Sys
	busy := sys.TotalBusy()
	bd := sys.TotalBreakdown()
	fr := bd.Fractions()
	breakdown := make(map[string]float64, cpumodel.NumCategories)
	cycles := make(map[string]int64, cpumodel.NumCategories)
	for _, cat := range cpumodel.Categories() {
		breakdown[cat.String()] = fr[cat]
		cycles[cat.String()] = int64(bd[cat])
	}
	var maxUtil float64
	for i := 0; i < sys.NumCores(); i++ {
		if u := sys.Core(i).Utilization(window); u > maxUtil {
			maxUtil = u
		}
	}
	lat := h.Latency()
	sizes := h.SKBSizes()
	skb64 := 0.0
	if sizes.Count() > 0 {
		skb64 = 1 - sizes.Fraction(60*1024)
	}
	return HostStats{
		BusyCores:       float64(busy) / float64(window),
		MaxCoreUtil:     maxUtil,
		Breakdown:       breakdown,
		BreakdownCycles: cycles,
		CacheMissRate:   h.CopyMissRate(),
		LatencyAvg:      time.Duration(lat.Mean()),
		LatencyP99:      time.Duration(lat.Quantile(0.99)),
		SKBAvgBytes:     sizes.Mean(),
		SKB64KBShare:    skb64,
		CopiedGB:        float64(h.Copied()) / 1e9,
		NICDrops:        h.NIC.Stats().RxDropped,
		Retransmits:     hostRetransmits(h),
		AcksSent:        hostAcksSent(h),
	}
}
