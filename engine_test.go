// End-to-end benchmarks and tests for the event-scheduler rework: the
// hierarchical timing wheel (the default) against the binary-heap
// reference, plus the steady-state allocation budget the hot-path purge
// bought. `make bench-engine` captures the Engine* pairs as JSON into
// BENCH_engine.json; cmd/benchdiff compares two such captures.
package hostsim_test

import (
	"reflect"
	"testing"

	"hostsim"
)

// benchEngine runs one short end-to-end simulation per iteration with the
// given scheduler. The workloads below are chosen for their distinct
// timer profiles: a single bulk flow (dense pacing/ack timers), an RPC
// incast (many short-lived flows churning timers), and a lossy mixed load
// (RTO arming/cancel traffic on top of both).
func benchEngine(b *testing.B, sched string, wl hostsim.Workload, loss float64) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchRunCfg()
		cfg.Scheduler = sched
		cfg.LossRate = loss
		if _, err := hostsim.Run(cfg, wl); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineWheelIPerf(b *testing.B) {
	benchEngine(b, "wheel", hostsim.LongFlowWorkload(hostsim.PatternSingle, 1), 0)
}

func BenchmarkEngineHeapIPerf(b *testing.B) {
	benchEngine(b, "heap", hostsim.LongFlowWorkload(hostsim.PatternSingle, 1), 0)
}

func BenchmarkEngineWheelRPCIncast(b *testing.B) {
	benchEngine(b, "wheel", hostsim.RPCIncastWorkload(8, 16384), 0)
}

func BenchmarkEngineHeapRPCIncast(b *testing.B) {
	benchEngine(b, "heap", hostsim.RPCIncastWorkload(8, 16384), 0)
}

func BenchmarkEngineWheelLossyMixed(b *testing.B) {
	benchEngine(b, "wheel", hostsim.MixedWorkload(4, 16384), 0.005)
}

func BenchmarkEngineHeapLossyMixed(b *testing.B) {
	benchEngine(b, "heap", hostsim.MixedWorkload(4, 16384), 0.005)
}

// TestSchedulerResultEquivalence pins the contract stated on
// Config.Scheduler: the wheel and the heap produce identical results on
// every workload, not merely similar ones. Any divergence in dispatch
// order would cascade through the RNG streams and show up here.
func TestSchedulerResultEquivalence(t *testing.T) {
	workloads := []struct {
		name string
		wl   hostsim.Workload
		loss float64
	}{
		{"iperf", hostsim.LongFlowWorkload(hostsim.PatternSingle, 1), 0},
		{"incast", hostsim.LongFlowWorkload(hostsim.PatternIncast, 4), 0},
		{"rpc", hostsim.RPCIncastWorkload(8, 16384), 0},
		{"lossy mixed", hostsim.MixedWorkload(4, 16384), 0.005},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			cfg := benchRunCfg()
			cfg.LossRate = w.loss
			cfg.Scheduler = "wheel"
			wheel, err := hostsim.Run(cfg, w.wl)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Scheduler = "heap"
			heap, err := hostsim.Run(cfg, w.wl)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wheel, heap) {
				t.Errorf("wheel and heap results diverged:\nwheel: %+v\nheap:  %+v", wheel, heap)
			}
		})
	}
}

// TestRunUnknownSchedulerRejected pins Run's validation of the knob.
func TestRunUnknownSchedulerRejected(t *testing.T) {
	cfg := benchRunCfg()
	cfg.Scheduler = "calendar"
	if _, err := hostsim.Run(cfg, hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)); err == nil {
		t.Fatal("unknown Scheduler should be rejected")
	}
}

// TestRunAllocationBudget guards the hot-path allocation purge: a default
// single-flow run must stay within a fixed allocation budget. The purge
// left the run at roughly 2.4k allocations (setup + unavoidable growth);
// the bound below leaves ~2.5x headroom so it only trips on a real
// regression (a per-event or per-packet allocation reappearing multiplies
// the count by orders of magnitude, not percentages).
func TestRunAllocationBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting run is not short")
	}
	const budget = 6000
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := hostsim.Run(benchRunCfg(), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Errorf("default Run allocated %.0f objects, budget %d; a hot-path allocation has crept back in", allocs, budget)
	}
}
