package hostsim_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"hostsim"
)

// shortCfg is a small but steady-state run for batch tests.
func shortCfg(seed int64) hostsim.Config {
	return hostsim.Config{
		Stack:    hostsim.AllOptimizations(),
		Seed:     seed,
		Warmup:   4 * time.Millisecond,
		Duration: 6 * time.Millisecond,
	}
}

// TestRunManyMatchesSerial is the core determinism guarantee: a parallel
// batch reports exactly what a serial loop over Run reports, per job.
func TestRunManyMatchesSerial(t *testing.T) {
	var jobs []hostsim.Job
	for seed := int64(1); seed <= 4; seed++ {
		jobs = append(jobs, hostsim.Job{
			Config:   shortCfg(seed),
			Workload: hostsim.LongFlowWorkload(hostsim.PatternSingle, 1),
		})
	}
	serial := make([]*hostsim.Result, len(jobs))
	for i, j := range jobs {
		r, err := hostsim.Run(j.Config, j.Workload)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = r
	}
	par, err := hostsim.RunMany(jobs, hostsim.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		a := fmt.Sprintf("%.6f|%.6f|%.6f|%v", serial[i].ThroughputGbps, serial[i].ThroughputPerCoreGbps, serial[i].Sender.BusyCores, serial[i].Sender.Breakdown)
		b := fmt.Sprintf("%.6f|%.6f|%.6f|%v", par[i].ThroughputGbps, par[i].ThroughputPerCoreGbps, par[i].Sender.BusyCores, par[i].Sender.Breakdown)
		if a != b {
			t.Errorf("job %d diverged:\nserial   %s\nparallel %s", i, a, b)
		}
	}
}

func TestRunManyReportsFirstError(t *testing.T) {
	bad := shortCfg(1)
	bad.LossRate = 2 // invalid
	jobs := []hostsim.Job{
		{Config: shortCfg(1), Workload: hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)},
		{Config: bad, Workload: hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)},
	}
	res, err := hostsim.RunMany(jobs, hostsim.WithParallelism(2))
	if err == nil {
		t.Fatal("expected an error from the bad job")
	}
	if res[0] == nil {
		t.Error("good job should still have a result")
	}
	if res[1] != nil {
		t.Error("bad job should have a nil result")
	}
}

func TestRunManyCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: nothing should run
	jobs := []hostsim.Job{
		{Config: shortCfg(1), Workload: hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)},
	}
	_, err := hostsim.RunMany(jobs, hostsim.WithContext(ctx), hostsim.WithParallelism(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func benchmarkRunMany(b *testing.B, workers int) {
	jobs := make([]hostsim.Job, runtime.NumCPU())
	for i := range jobs {
		jobs[i] = hostsim.Job{
			Config:   shortCfg(int64(i + 1)),
			Workload: hostsim.LongFlowWorkload(hostsim.PatternSingle, 1),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hostsim.RunMany(jobs, hostsim.WithParallelism(workers)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunManySerial(b *testing.B)   { benchmarkRunMany(b, 1) }
func BenchmarkRunManyParallel(b *testing.B) { benchmarkRunMany(b, runtime.NumCPU()) }
