package hostsim

import (
	"testing"
	"time"
)

// quickCfg is a short window for API-surface tests.
func quickCfg(s Stack) Config {
	return Config{Stack: s, Seed: 5, Warmup: 6 * time.Millisecond, Duration: 8 * time.Millisecond}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		wl   Workload
	}{
		{"bad loss", Config{Stack: AllOptimizations(), LossRate: 1.5}, LongFlowWorkload(PatternSingle, 1)},
		{"bad cc", func() Config { s := AllOptimizations(); s.CC = "vegas"; return Config{Stack: s} }(), LongFlowWorkload(PatternSingle, 1)},
		{"bad steering", func() Config { s := AllOptimizations(); s.Steering = "magic"; return Config{Stack: s} }(), LongFlowWorkload(PatternSingle, 1)},
		{"lro+gro", func() Config { s := AllOptimizations(); s.LRO = true; return Config{Stack: s} }(), LongFlowWorkload(PatternSingle, 1)},
		{"bad pattern", Config{Stack: AllOptimizations()}, LongFlowWorkload("ring", 2)},
		{"bad kind", Config{Stack: AllOptimizations()}, Workload{Kind: "quic"}},
		{"rpc no clients", Config{Stack: AllOptimizations()}, Workload{Kind: "rpc", RPCSize: 4096}},
		{"rpc no size", Config{Stack: AllOptimizations()}, Workload{Kind: "rpc", RPCClients: 4}},
		{"remote multi-flow", Config{Stack: AllOptimizations()},
			Workload{Kind: "long", Pattern: PatternIncast, N: 4, RemoteNUMA: true}},
	}
	for _, c := range cases {
		if _, err := Run(c.cfg, c.wl); err == nil {
			t.Errorf("%s: expected an error", c.name)
		}
	}
}

func TestRunDefaultsWindows(t *testing.T) {
	res, err := Run(Config{Stack: AllOptimizations(), Seed: 2}, LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration != 30*time.Millisecond {
		t.Errorf("default Duration = %v, want 30ms", res.Duration)
	}
}

func TestResultFieldsPopulated(t *testing.T) {
	res, err := Run(quickCfg(AllOptimizations()), LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputGbps <= 0 || res.ThroughputPerCoreGbps <= 0 {
		t.Error("throughput fields empty")
	}
	if res.Bottleneck != "sender" && res.Bottleneck != "receiver" {
		t.Errorf("Bottleneck = %q", res.Bottleneck)
	}
	for _, h := range []HostStats{res.Sender, res.Receiver} {
		if len(h.Breakdown) != 8 {
			t.Errorf("breakdown has %d categories, want 8", len(h.Breakdown))
		}
		var sum float64
		for _, f := range h.Breakdown {
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("breakdown fractions sum to %v", sum)
		}
		if h.BusyCores <= 0 || h.MaxCoreUtil <= 0 || h.MaxCoreUtil > 1 {
			t.Errorf("busy stats out of range: %+v", h)
		}
	}
	if res.Receiver.LatencyAvg <= 0 || res.Receiver.LatencyP99 < res.Receiver.LatencyAvg {
		t.Error("latency stats inconsistent")
	}
	if res.Receiver.SKBAvgBytes <= 0 {
		t.Error("skb stats empty")
	}
	if res.Receiver.AcksSent == 0 {
		t.Error("ack counter empty")
	}
}

func TestSteeringModes(t *testing.T) {
	results := map[string]*Result{}
	for _, mode := range []string{"arfs", "rfs", "rps", "rss", "worst"} {
		s := AllOptimizations()
		s.Steering = mode
		res, err := Run(quickCfg(s), LongFlowWorkload(PatternSingle, 1))
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		results[mode] = res
	}
	// aRFS must be the most CPU-efficient; worst-case pinning the least.
	if results["arfs"].ThroughputPerCoreGbps <= results["worst"].ThroughputPerCoreGbps {
		t.Errorf("aRFS (%.1f) should beat worst-case (%.1f) per core",
			results["arfs"].ThroughputPerCoreGbps, results["worst"].ThroughputPerCoreGbps)
	}
	// Software RFS sits between aRFS and worst-case.
	if r := results["rfs"].ThroughputPerCoreGbps; r >= results["arfs"].ThroughputPerCoreGbps ||
		r <= results["worst"].ThroughputPerCoreGbps {
		t.Errorf("software RFS (%.1f) should sit between aRFS (%.1f) and worst (%.1f)",
			r, results["arfs"].ThroughputPerCoreGbps, results["worst"].ThroughputPerCoreGbps)
	}
	// RPS keeps socket locks contended; RFS resolves to the app's core.
	if results["rps"].Receiver.Breakdown["lock"] <= results["rfs"].Receiver.Breakdown["lock"] {
		t.Error("RPS should show more lock contention than RFS")
	}
}

func TestZeroCopyTxUnloadsSenderOnly(t *testing.T) {
	base, err := Run(quickCfg(AllOptimizations()), LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	s := AllOptimizations()
	s.ZeroCopyTx = true
	zc, err := Run(quickCfg(s), LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	if zc.Sender.BusyCores >= 0.8*base.Sender.BusyCores {
		t.Errorf("tx zero-copy should cut sender CPU: %.2f vs %.2f", zc.Sender.BusyCores, base.Sender.BusyCores)
	}
	// The receiver-bound throughput barely changes (§4's argument).
	ratio := zc.ThroughputPerCoreGbps / base.ThroughputPerCoreGbps
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("tx zero-copy moved tpc by %.2fx; should be neutral", ratio)
	}
}

func TestZeroCopyRxLiftsThroughputPerCore(t *testing.T) {
	base, err := Run(quickCfg(AllOptimizations()), LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	s := AllOptimizations()
	s.ZeroCopyRx = true
	zc, err := Run(quickCfg(s), LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	if zc.ThroughputPerCoreGbps < 1.25*base.ThroughputPerCoreGbps {
		t.Errorf("rx zero-copy should lift tpc substantially: %.1f vs %.1f",
			zc.ThroughputPerCoreGbps, base.ThroughputPerCoreGbps)
	}
	if zc.Receiver.Breakdown["data_copy"] > 0.01 {
		t.Errorf("rx zero-copy left a copy share of %.2f", zc.Receiver.Breakdown["data_copy"])
	}
}

func TestSegregatedMixRestoresIsolation(t *testing.T) {
	shared, err := Run(quickCfg(AllOptimizations()), MixedWorkload(16, 4096))
	if err != nil {
		t.Fatal(err)
	}
	wl := MixedWorkload(16, 4096)
	wl.Segregate = true
	seg, err := Run(quickCfg(AllOptimizations()), wl)
	if err != nil {
		t.Fatal(err)
	}
	if seg.LongFlowGbps < 1.5*shared.LongFlowGbps {
		t.Errorf("segregation should restore the long flow: %.1f vs shared %.1f",
			seg.LongFlowGbps, shared.LongFlowGbps)
	}
	if seg.RPCGbps < 1.2*shared.RPCGbps {
		t.Errorf("segregation should restore the shorts: %.2f vs shared %.2f",
			seg.RPCGbps, shared.RPCGbps)
	}
}

func TestTuningKnobsTakeEffect(t *testing.T) {
	// Disabling the pageset must inflate the receiver's memory share.
	base, err := Run(quickCfg(AllOptimizations()), LongFlowWorkload(PatternOneToOne, 4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg(AllOptimizations())
	cfg.Tuning = &Tuning{PagesetCap: -1}
	noPCP, err := Run(cfg, LongFlowWorkload(PatternOneToOne, 4))
	if err != nil {
		t.Fatal(err)
	}
	if noPCP.Receiver.Breakdown["memory"] <= base.Receiver.Breakdown["memory"] {
		t.Error("disabling pagesets should inflate the memory share")
	}
	// Disabling the DCA hazard must cut the tuned-buffer miss rate.
	s := AllOptimizations()
	s.RcvBufBytes = 3200 << 10
	s.RxDescriptors = 4096
	withHazard, err := Run(quickCfg(s), LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg = quickCfg(s)
	cfg.Tuning = &Tuning{DCAHazardFactor: -1}
	noHazard, err := Run(cfg, LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	if noHazard.Receiver.CacheMissRate >= withHazard.Receiver.CacheMissRate {
		t.Error("disabling the hazard should cut the miss rate")
	}
}

func TestLROStackRuns(t *testing.T) {
	s := AllOptimizations()
	s.GRO, s.LRO = false, true
	res, err := Run(quickCfg(s), LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	// LRO aggregates in hardware: full-size skbs with less netdev CPU.
	if res.Receiver.SKBAvgBytes < 9000 {
		t.Errorf("LRO skb avg = %.0fB, want aggregates", res.Receiver.SKBAvgBytes)
	}
	if res.ThroughputPerCoreGbps <= 0 {
		t.Error("LRO stack moved no data")
	}
}

func TestECNConfigApplies(t *testing.T) {
	s := AllOptimizations()
	s.CC = "dctcp"
	cfg := quickCfg(s)
	cfg.ECNMarkKB = 64
	res, err := Run(cfg, LongFlowWorkload(PatternIncast, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputGbps <= 0 {
		t.Error("DCTCP with ECN moved no data")
	}
}

func TestTraceRecordsDataPath(t *testing.T) {
	cfg := quickCfg(AllOptimizations())
	cfg.TraceEvents = 256
	res, err := Run(cfg, LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("trace empty")
	}
	kinds := map[string]bool{}
	for _, e := range res.Trace {
		kinds[e.Kind] = true
		if e.Host != "sender" && e.Host != "receiver" {
			t.Fatalf("bad host %q", e.Host)
		}
	}
	for _, want := range []string{"app-write", "tx-segment", "deliver-skb", "ack-sent", "app-read"} {
		if !kinds[want] {
			t.Errorf("trace missing %q events (got %v)", want, kinds)
		}
	}
	// Events are emitted in execution order; logical timestamps (start +
	// cycles charged so far) may invert by at most one work item across
	// contexts.
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].At < res.Trace[i-1].At-time.Millisecond {
			t.Fatalf("trace wildly out of order at %d: %v after %v",
				i, res.Trace[i].At, res.Trace[i-1].At)
		}
	}
	// Flow filtering works.
	cfg.TraceFlow = 1
	res2, err := Run(cfg, LongFlowWorkload(PatternOneToOne, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res2.Trace {
		if e.Flow != 1 {
			t.Fatalf("flow filter leaked flow %d", e.Flow)
		}
	}
	// No trace requested: none recorded.
	res3, err := Run(quickCfg(AllOptimizations()), LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Trace) != 0 {
		t.Error("trace recorded without being requested")
	}
}

func TestFairnessIndexReported(t *testing.T) {
	res, err := Run(quickCfg(AllOptimizations()), LongFlowWorkload(PatternOneToOne, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FlowGbps) != 8 {
		t.Fatalf("FlowGbps has %d entries, want 8", len(res.FlowGbps))
	}
	if res.FairnessIndex < 0.9 || res.FairnessIndex > 1.0001 {
		t.Errorf("saturated one-to-one fairness = %v, want ~1", res.FairnessIndex)
	}
}

func TestLinkGbpsScaling(t *testing.T) {
	cfg := quickCfg(AllOptimizations())
	cfg.LinkGbps = 25
	res, err := Run(cfg, LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	// A single core saturates a 25G link (the paper's history).
	if res.ThroughputGbps < 23 || res.ThroughputGbps > 25.5 {
		t.Errorf("25G link throughput = %.2f, want ~24.8 (link-bound)", res.ThroughputGbps)
	}
	if res.Receiver.MaxCoreUtil > 0.95 {
		t.Error("receiver should not be saturated on a 25G link")
	}
	cfg.LinkGbps = -1
	if _, err := Run(cfg, LongFlowWorkload(PatternSingle, 1)); err == nil {
		t.Error("negative LinkGbps should error")
	}
}

func TestDCAAwareDRSBeatsDefault(t *testing.T) {
	base, err := Run(quickCfg(AllOptimizations()), LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	s := AllOptimizations()
	s.DCAAwareDRS = true
	aware, err := Run(quickCfg(s), LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	if aware.ThroughputPerCoreGbps < 1.15*base.ThroughputPerCoreGbps {
		t.Errorf("DCA-aware DRS should clearly beat default: %.1f vs %.1f",
			aware.ThroughputPerCoreGbps, base.ThroughputPerCoreGbps)
	}
	if aware.Receiver.CacheMissRate >= base.Receiver.CacheMissRate/2 {
		t.Errorf("DCA-aware DRS miss %.2f should be far below default %.2f",
			aware.Receiver.CacheMissRate, base.Receiver.CacheMissRate)
	}
}

func TestReceiverSchedulerFixesIncast(t *testing.T) {
	base, err := Run(quickCfg(AllOptimizations()), LongFlowWorkload(PatternIncast, 8))
	if err != nil {
		t.Fatal(err)
	}
	s := AllOptimizations()
	s.RcvSchedulerK = 2
	sched, err := Run(quickCfg(s), LongFlowWorkload(PatternIncast, 8))
	if err != nil {
		t.Fatal(err)
	}
	if sched.ThroughputPerCoreGbps < 1.2*base.ThroughputPerCoreGbps {
		t.Errorf("receiver scheduling should lift incast tpc: %.1f vs %.1f",
			sched.ThroughputPerCoreGbps, base.ThroughputPerCoreGbps)
	}
	if sched.Receiver.CacheMissRate >= base.Receiver.CacheMissRate/2 {
		t.Errorf("receiver scheduling miss %.2f should collapse vs %.2f",
			sched.Receiver.CacheMissRate, base.Receiver.CacheMissRate)
	}
	if sched.Receiver.LatencyAvg >= base.Receiver.LatencyAvg {
		t.Error("receiver scheduling should cut host queueing latency")
	}
	// Rotation must preserve fairness.
	if sched.FairnessIndex < 0.9 {
		t.Errorf("fairness = %.3f under rotation, want ~1", sched.FairnessIndex)
	}
}

func TestJainIndex(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{0, 0}, 0},
		{[]float64{5, 5, 5, 5}, 1},
		{[]float64{10, 0}, 0.5},
		{[]float64{4, 4, 4, 0}, 0.75},
	}
	for _, c := range cases {
		got := jain(c.xs)
		if got < c.want-1e-9 || got > c.want+1e-9 {
			t.Errorf("jain(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestPatternsAllRun(t *testing.T) {
	for _, p := range []Pattern{PatternSingle, PatternOneToOne, PatternIncast, PatternOutcast, PatternAllToAll} {
		n := 4
		res, err := Run(quickCfg(AllOptimizations()), LongFlowWorkload(p, n))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.ThroughputGbps <= 0 {
			t.Errorf("%s: no throughput", p)
		}
	}
}
