package hostsim

import (
	"testing"
	"time"
)

// TestProbeScenarios prints a one-line summary per paper scenario. It is
// a diagnostic aid for calibration (run with -v); assertions live in
// calibration_test.go.
func TestProbeScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic probe")
	}
	short := Config{Seed: 1, Warmup: 15 * time.Millisecond, Duration: 25 * time.Millisecond}
	type probe struct {
		name string
		cfg  Config
		wl   Workload
	}
	all := AllOptimizations()
	noOpt := NoOptimizations()
	tsogro := noOpt
	tsogro.TSO, tsogro.GSO, tsogro.GRO = true, true, true
	jumbo := tsogro
	jumbo.JumboFrames = true
	dcaOff := all
	dcaOff.DCA = false
	iommu := all
	iommu.IOMMU = true
	bbr := all
	bbr.CC = "bbr"
	dctcp := all
	dctcp.CC = "dctcp"

	mk := func(s Stack) Config { c := short; c.Stack = s; return c }
	lossCfg := func(rate float64) Config { c := mk(all); c.LossRate = rate; return c }

	probes := []probe{
		{"single/noopt", mk(noOpt), LongFlowWorkload(PatternSingle, 1)},
		{"single/+tso-gro", mk(tsogro), LongFlowWorkload(PatternSingle, 1)},
		{"single/+jumbo", mk(jumbo), LongFlowWorkload(PatternSingle, 1)},
		{"single/+arfs(all)", mk(all), LongFlowWorkload(PatternSingle, 1)},
		{"single/remote-numa", mk(all), Workload{Kind: "long", Pattern: PatternSingle, RemoteNUMA: true}},
		{"single/dca-off", mk(dcaOff), LongFlowWorkload(PatternSingle, 1)},
		{"single/iommu", mk(iommu), LongFlowWorkload(PatternSingle, 1)},
		{"single/bbr", mk(bbr), LongFlowWorkload(PatternSingle, 1)},
		{"single/dctcp", mk(dctcp), LongFlowWorkload(PatternSingle, 1)},
		{"one-to-one/8", mk(all), LongFlowWorkload(PatternOneToOne, 8)},
		{"one-to-one/24", mk(all), LongFlowWorkload(PatternOneToOne, 24)},
		{"incast/8", mk(all), LongFlowWorkload(PatternIncast, 8)},
		{"incast/24", mk(all), LongFlowWorkload(PatternIncast, 24)},
		{"outcast/8", mk(all), LongFlowWorkload(PatternOutcast, 8)},
		{"outcast/24", mk(all), LongFlowWorkload(PatternOutcast, 24)},
		{"all-to-all/8", mk(all), LongFlowWorkload(PatternAllToAll, 8)},
		{"all-to-all/24", mk(all), LongFlowWorkload(PatternAllToAll, 24)},
		{"loss/1.5e-4", lossCfg(1.5e-4), LongFlowWorkload(PatternSingle, 1)},
		{"loss/1.5e-3", lossCfg(1.5e-3), LongFlowWorkload(PatternSingle, 1)},
		{"loss/1.5e-2", lossCfg(1.5e-2), LongFlowWorkload(PatternSingle, 1)},
		{"rpc/4KB", mk(all), RPCIncastWorkload(16, 4096)},
		{"rpc/16KB", mk(all), RPCIncastWorkload(16, 16384)},
		{"rpc/64KB", mk(all), RPCIncastWorkload(16, 65536)},
		{"mixed/0", mk(all), MixedWorkload(0, 4096)},
		{"mixed/16", mk(all), MixedWorkload(16, 4096)},
	}
	for _, p := range probes {
		res, err := Run(p.cfg, p.wl)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		b := res.Receiver.Breakdown
		t.Logf("%-20s thpt %6.2f tpc %6.2f [%s] sndBusy %5.2f rcvBusy %5.2f miss %4.1f%% copy %4.1f%% sched %4.1f%% mem %4.1f%% tcp %4.1f%% lat %8v skb %5.1fKB rpc %6d drops %5d retx %5d",
			p.name, res.ThroughputGbps, res.ThroughputPerCoreGbps, res.Bottleneck,
			res.Sender.BusyCores, res.Receiver.BusyCores,
			res.Receiver.CacheMissRate*100, b["data_copy"]*100, b["sched"]*100, b["memory"]*100, b["tcp/ip"]*100,
			res.Receiver.LatencyAvg.Round(time.Microsecond), res.Receiver.SKBAvgBytes/1024,
			res.RPCCompleted, res.Receiver.NICDrops, res.Sender.Retransmits)
	}
}
