// Benchmarks regenerating every figure and table of the paper's
// evaluation. Each benchmark runs the corresponding experiment end to end
// (simulated warm-up + measurement window) and reports the figure's
// headline metric via b.ReportMetric, so `go test -bench .` doubles as a
// full reproduction run. Wall-clock ns/op is the cost of regenerating the
// figure, not a property of the simulated system.
package hostsim_test

import (
	"testing"
	"time"

	"hostsim"
	"hostsim/internal/figures"
)

// benchRC is a reduced window so the full benchmark suite stays fast while
// remaining in steady state.
func benchRC() figures.RunConfig {
	return figures.RunConfig{Seed: 7, Warmup: 8 * time.Millisecond, Duration: 12 * time.Millisecond}
}

// benchFigure runs one registered experiment per iteration.
func benchFigure(b *testing.B, id string) {
	e, ok := figures.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	rc := benchRC()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		figures.ClearCache()
		tbl, err := e.Run(rc)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig3a(b *testing.B)  { benchFigure(b, "fig3a") }
func BenchmarkFig3b(b *testing.B)  { benchFigure(b, "fig3b") }
func BenchmarkFig3c(b *testing.B)  { benchFigure(b, "fig3c") }
func BenchmarkFig3d(b *testing.B)  { benchFigure(b, "fig3d") }
func BenchmarkFig3e(b *testing.B)  { benchFigure(b, "fig3e") }
func BenchmarkFig3f(b *testing.B)  { benchFigure(b, "fig3f") }
func BenchmarkFig4(b *testing.B)   { benchFigure(b, "fig4") }
func BenchmarkFig5a(b *testing.B)  { benchFigure(b, "fig5a") }
func BenchmarkFig5b(b *testing.B)  { benchFigure(b, "fig5b") }
func BenchmarkFig5c(b *testing.B)  { benchFigure(b, "fig5c") }
func BenchmarkFig6a(b *testing.B)  { benchFigure(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)  { benchFigure(b, "fig6b") }
func BenchmarkFig6c(b *testing.B)  { benchFigure(b, "fig6c") }
func BenchmarkFig7a(b *testing.B)  { benchFigure(b, "fig7a") }
func BenchmarkFig7b(b *testing.B)  { benchFigure(b, "fig7b") }
func BenchmarkFig7c(b *testing.B)  { benchFigure(b, "fig7c") }
func BenchmarkFig8a(b *testing.B)  { benchFigure(b, "fig8a") }
func BenchmarkFig8b(b *testing.B)  { benchFigure(b, "fig8b") }
func BenchmarkFig8c(b *testing.B)  { benchFigure(b, "fig8c") }
func BenchmarkFig9a(b *testing.B)  { benchFigure(b, "fig9a") }
func BenchmarkFig9b(b *testing.B)  { benchFigure(b, "fig9b") }
func BenchmarkFig9c(b *testing.B)  { benchFigure(b, "fig9c") }
func BenchmarkFig9d(b *testing.B)  { benchFigure(b, "fig9d") }
func BenchmarkFig10a(b *testing.B) { benchFigure(b, "fig10a") }
func BenchmarkFig10b(b *testing.B) { benchFigure(b, "fig10b") }
func BenchmarkFig10c(b *testing.B) { benchFigure(b, "fig10c") }
func BenchmarkFig11a(b *testing.B) { benchFigure(b, "fig11a") }
func BenchmarkFig11b(b *testing.B) { benchFigure(b, "fig11b") }
func BenchmarkFig12a(b *testing.B) { benchFigure(b, "fig12a") }
func BenchmarkFig12b(b *testing.B) { benchFigure(b, "fig12b") }
func BenchmarkFig12c(b *testing.B) { benchFigure(b, "fig12c") }
func BenchmarkFig13a(b *testing.B) { benchFigure(b, "fig13a") }
func BenchmarkFig13b(b *testing.B) { benchFigure(b, "fig13b") }
func BenchmarkFig13c(b *testing.B) { benchFigure(b, "fig13c") }
func BenchmarkTable2(b *testing.B) { benchFigure(b, "table2") }

// Extension experiments (the paper's §4 future directions, quantified).
func BenchmarkExt1Steering(b *testing.B)     { benchFigure(b, "ext1") }
func BenchmarkExt2ZeroCopy(b *testing.B)     { benchFigure(b, "ext2") }
func BenchmarkExt3Segregation(b *testing.B)  { benchFigure(b, "ext3") }
func BenchmarkExt4Bandwidth(b *testing.B)    { benchFigure(b, "ext4") }
func BenchmarkExt5Fairness(b *testing.B)     { benchFigure(b, "ext5") }
func BenchmarkExt6DCAAwareDRS(b *testing.B)  { benchFigure(b, "ext6") }
func BenchmarkExt7RcvScheduler(b *testing.B) { benchFigure(b, "ext7") }

// Ablations of the simulator's own design choices (DESIGN.md §3).
func BenchmarkAbl1DCAHazard(b *testing.B)        { benchFigure(b, "abl1") }
func BenchmarkAbl2TSQ(b *testing.B)              { benchFigure(b, "abl2") }
func BenchmarkAbl3Moderation(b *testing.B)       { benchFigure(b, "abl3") }
func BenchmarkAbl4SchedGranularity(b *testing.B) { benchFigure(b, "abl4") }
func BenchmarkAbl5Pageset(b *testing.B)          { benchFigure(b, "abl5") }

// Appendix breakdowns (the paper's "see [7]" references).
func BenchmarkApp1IncastSenders(b *testing.B)    { benchFigure(b, "app1") }
func BenchmarkApp2OutcastReceivers(b *testing.B) { benchFigure(b, "app2") }
func BenchmarkApp3RPCClients(b *testing.B)       { benchFigure(b, "app3") }
func BenchmarkApp4MixedClients(b *testing.B)     { benchFigure(b, "app4") }
func BenchmarkApp5AllToAllSenders(b *testing.B)  { benchFigure(b, "app5") }

// ---------------------------------------------------------------------------
// Headline-scenario benchmarks: these report the simulated metrics the
// paper leads with, so a bench run prints the reproduction numbers.

func benchScenario(b *testing.B, cfg hostsim.Config, wl hostsim.Workload) {
	var last *hostsim.Result
	for i := 0; i < b.N; i++ {
		res, err := hostsim.Run(cfg, wl)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.ThroughputPerCoreGbps, "GbpsPerCore")
	b.ReportMetric(last.ThroughputGbps, "GbpsTotal")
	b.ReportMetric(last.Receiver.CacheMissRate*100, "miss%")
	b.ReportMetric(last.Receiver.Breakdown["data_copy"]*100, "copy%")
}

func benchCfg(s hostsim.Stack) hostsim.Config {
	return hostsim.Config{Stack: s, Seed: 7, Warmup: 8 * time.Millisecond, Duration: 12 * time.Millisecond}
}

func BenchmarkScenarioSingleFlowAllOpts(b *testing.B) {
	benchScenario(b, benchCfg(hostsim.AllOptimizations()),
		hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
}

func BenchmarkScenarioSingleFlowNoOpts(b *testing.B) {
	benchScenario(b, benchCfg(hostsim.NoOptimizations()),
		hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
}

func BenchmarkScenarioIncast8(b *testing.B) {
	benchScenario(b, benchCfg(hostsim.AllOptimizations()),
		hostsim.LongFlowWorkload(hostsim.PatternIncast, 8))
}

func BenchmarkScenarioOutcast8(b *testing.B) {
	benchScenario(b, benchCfg(hostsim.AllOptimizations()),
		hostsim.LongFlowWorkload(hostsim.PatternOutcast, 8))
}

func BenchmarkScenarioAllToAll24(b *testing.B) {
	benchScenario(b, benchCfg(hostsim.AllOptimizations()),
		hostsim.LongFlowWorkload(hostsim.PatternAllToAll, 24))
}

func BenchmarkScenarioRPC4KB(b *testing.B) {
	benchScenario(b, benchCfg(hostsim.AllOptimizations()),
		hostsim.RPCIncastWorkload(16, 4096))
}

func BenchmarkScenarioMixed16(b *testing.B) {
	benchScenario(b, benchCfg(hostsim.AllOptimizations()),
		hostsim.MixedWorkload(16, 4096))
}

// benchRunCfg is one short end-to-end run for the telemetry-overhead
// comparison benchmarks below.
func benchRunCfg() hostsim.Config {
	return hostsim.Config{
		Stack: hostsim.AllOptimizations(), Seed: 7,
		Warmup: 4 * time.Millisecond, Duration: 6 * time.Millisecond,
	}
}

// BenchmarkRunTelemetryOff is the baseline data path with no telemetry
// state allocated; compare against BenchmarkRunTelemetryOn to verify the
// nil-registry fast path costs nothing when disabled.
func BenchmarkRunTelemetryOff(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hostsim.Run(benchRunCfg(), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunTelemetryOn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchRunCfg()
		cfg.Telemetry = &hostsim.Telemetry{}
		if _, err := hostsim.Run(cfg, hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunCheckOff is the baseline for the invariant-checker
// overhead pair: with Config.Check nil, the leaf conservation counters
// still tick (they are plain integer arithmetic on paths that already
// touch the stats) but no ledger, audit timer or rule runs. Compare
// against BenchmarkRunCheckOn for the armed cost.
func BenchmarkRunCheckOff(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hostsim.Run(benchRunCfg(), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunCheckOn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchRunCfg()
		cfg.Check = &hostsim.CheckOptions{}
		if _, err := hostsim.Run(cfg, hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunInspectOff is the baseline for the wire-level inspector
// overhead pair: with Config.Inspect nil the only residue is a nil tap
// test per wire transmission and a nil probe test per ACK. Compare
// against BenchmarkRunInspectOn for the cost of capturing everything.
func BenchmarkRunInspectOff(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hostsim.Run(benchRunCfg(), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunInspectOn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchRunCfg()
		cfg.Inspect = &hostsim.InspectOptions{}
		if _, err := hostsim.Run(cfg, hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunMsgTraceOff is the baseline for the message-tracer
// overhead pair: with Config.MsgTrace nil the only residue is a nil
// tracer test at the write, segment-transmit and read sites, and the
// per-frame Write/TCPTx stamps stay unstamped. Compare against
// BenchmarkRunMsgTraceOn for the armed cost of per-message span
// assembly and the percentile engine.
func BenchmarkRunMsgTraceOff(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hostsim.Run(benchRunCfg(), hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunMsgTraceOn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchRunCfg()
		cfg.MsgTrace = &hostsim.MsgTraceOptions{}
		if _, err := hostsim.Run(cfg, hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFabricCfg is one short end-to-end fabric run for the topology
// benchmarks below: H hosts on the ToR, unbounded shared buffer.
func benchFabricCfg(hosts int) hostsim.Config {
	cfg := benchRunCfg()
	cfg.Fabric = &hostsim.FabricOptions{Hosts: hosts}
	return cfg
}

// BenchmarkFabricRunSingle2 runs the same single flow as the direct-link
// baselines above but through a 2-host fabric; the pair quantifies the
// switch's event overhead (the two are event-for-event identical, so any
// gap is per-event constant cost, not extra events).
func BenchmarkFabricRunSingle2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hostsim.Run(benchFabricCfg(2), hostsim.LongFlowWorkload(hostsim.PatternIncast, 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFabricRunIncast16 is the scaling headline: 15 hosts into one.
func BenchmarkFabricRunIncast16(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hostsim.Run(benchFabricCfg(16), hostsim.LongFlowWorkload(hostsim.PatternIncast, 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFabricRunIncast64 is the acceptance-scale topology: 63 hosts
// into one, shorter windows to keep iterations reasonable.
func BenchmarkFabricRunIncast64(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchFabricCfg(64)
		cfg.Warmup, cfg.Duration = 3*time.Millisecond, 4*time.Millisecond
		if _, err := hostsim.Run(cfg, hostsim.LongFlowWorkload(hostsim.PatternIncast, 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFabricRunAllToAll8 stresses every port in both directions: 56
// flows across 8 hosts.
func BenchmarkFabricRunAllToAll8(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchFabricCfg(8)
		cfg.Warmup, cfg.Duration = 3*time.Millisecond, 4*time.Millisecond
		if _, err := hostsim.Run(cfg, hostsim.LongFlowWorkload(hostsim.PatternAllToAll, 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFabricRunBuffered16 adds the shared-buffer admission check to
// every forwarded frame (256KB pool under 15:1 incast, drops and
// retransmissions included); compare against BenchmarkFabricRunIncast16
// for the dynamic-threshold overhead.
func BenchmarkFabricRunBuffered16(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchFabricCfg(16)
		cfg.Fabric = &hostsim.FabricOptions{Hosts: 16, SharedBufferKB: 256}
		if _, err := hostsim.Run(cfg, hostsim.LongFlowWorkload(hostsim.PatternIncast, 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFabricObsOff is the baseline for the fabric-observatory
// overhead pair: with Config.FabricObs nil the only residue is a nil
// observer test per forwarded frame and a nil tap test per egress
// transmission/delivery. Compare against BenchmarkFabricObsOn for the
// armed cost of stamping, burst tracking and the per-port sampler.
func BenchmarkFabricObsOff(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchFabricCfg(16)
		cfg.Fabric = &hostsim.FabricOptions{Hosts: 16, SharedBufferKB: 256}
		if _, err := hostsim.Run(cfg, hostsim.LongFlowWorkload(hostsim.PatternIncast, 0)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFabricObsOn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchFabricCfg(16)
		cfg.Fabric = &hostsim.FabricOptions{Hosts: 16, SharedBufferKB: 256}
		cfg.FabricObs = &hostsim.FabricObsOptions{}
		if _, err := hostsim.Run(cfg, hostsim.LongFlowWorkload(hostsim.PatternIncast, 0)); err != nil {
			b.Fatal(err)
		}
	}
}
