package hostsim

import (
	"testing"
	"time"
)

// The calibration suite pins the simulator to the paper's headline
// numbers (see DESIGN.md §3.7 and EXPERIMENTS.md). Bands are deliberately
// generous: the goal is reproducing shapes — who wins, by what rough
// factor — not exact testbed values.

func calCfg(s Stack) Config {
	return Config{Stack: s, Seed: 7, Warmup: 15 * time.Millisecond, Duration: 25 * time.Millisecond}
}

func mustRun(t *testing.T, cfg Config, wl Workload) *Result {
	t.Helper()
	res, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func within(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %.3f, want within [%.3f, %.3f]", name, got, lo, hi)
	}
}

// Fig. 3a headline: a single flow with all optimizations reaches ~42Gbps
// per core; the receiver is the bottleneck and fully busy.
func TestCalSingleFlowAllOpts(t *testing.T) {
	res := mustRun(t, calCfg(AllOptimizations()), LongFlowWorkload(PatternSingle, 1))
	within(t, "tpc", res.ThroughputPerCoreGbps, 38, 48)
	if res.Bottleneck != "receiver" {
		t.Errorf("bottleneck = %s, want receiver", res.Bottleneck)
	}
	within(t, "receiver busy cores", res.Receiver.BusyCores, 0.97, 1.03)
	within(t, "sender busy cores", res.Sender.BusyCores, 0.4, 0.7)
}

// Fig. 3d: data copy dominates the receiver (~49% in the paper).
func TestCalReceiverCopyDominates(t *testing.T) {
	res := mustRun(t, calCfg(AllOptimizations()), LongFlowWorkload(PatternSingle, 1))
	within(t, "receiver copy share", res.Receiver.Breakdown["data_copy"], 0.42, 0.62)
	for cat, f := range res.Receiver.Breakdown {
		if cat != "data_copy" && f >= res.Receiver.Breakdown["data_copy"] {
			t.Errorf("category %s (%.2f) rivals data copy", cat, f)
		}
	}
}

// §3.1: even a single flow sees ~49% L3 miss rate with the default
// (autotuned ~6MB) receive buffer.
func TestCalSingleFlowCacheMiss(t *testing.T) {
	res := mustRun(t, calCfg(AllOptimizations()), LongFlowWorkload(PatternSingle, 1))
	within(t, "cache miss rate", res.Receiver.CacheMissRate, 0.40, 0.72)
}

// Fig. 3a: each optimization level improves throughput-per-core
// (no-opt < +TSO/GRO < +Jumbo < +aRFS).
func TestCalOptimizationLadder(t *testing.T) {
	noOpt := NoOptimizations()
	tsogro := noOpt
	tsogro.TSO, tsogro.GSO, tsogro.GRO = true, true, true
	jumbo := tsogro
	jumbo.JumboFrames = true
	steps := []Stack{noOpt, tsogro, jumbo, AllOptimizations()}
	var prev float64
	for i, s := range steps {
		res := mustRun(t, calCfg(s), LongFlowWorkload(PatternSingle, 1))
		if res.ThroughputPerCoreGbps <= prev {
			t.Errorf("step %d: tpc %.2f did not improve on %.2f", i, res.ThroughputPerCoreGbps, prev)
		}
		prev = res.ThroughputPerCoreGbps
	}
	// The paper's no-opt column sits under 10Gbps per core.
	res := mustRun(t, calCfg(noOpt), LongFlowWorkload(PatternSingle, 1))
	within(t, "no-opt tpc", res.ThroughputPerCoreGbps, 2, 10)
}

// Fig. 3e: the cache-optimal configuration (3200KB buffer, few
// descriptors) beats the default, approaching the paper's ~55Gbps.
func TestCalOptimalBufferBeatsDefault(t *testing.T) {
	def := mustRun(t, calCfg(AllOptimizations()), LongFlowWorkload(PatternSingle, 1))
	tuned := AllOptimizations()
	tuned.RcvBufBytes = 3200 << 10
	tuned.RxDescriptors = 256
	opt := mustRun(t, calCfg(tuned), LongFlowWorkload(PatternSingle, 1))
	if opt.ThroughputPerCoreGbps <= def.ThroughputPerCoreGbps {
		t.Errorf("tuned (%.2f) should beat default (%.2f)", opt.ThroughputPerCoreGbps, def.ThroughputPerCoreGbps)
	}
	within(t, "tuned tpc", opt.ThroughputPerCoreGbps, 47, 62)
	if opt.Receiver.CacheMissRate >= def.Receiver.CacheMissRate {
		t.Error("tuned buffer should cut the miss rate")
	}
}

// Fig. 3f: NAPI-to-copy latency grows steeply with the Rx buffer.
func TestCalLatencyGrowsWithBuffer(t *testing.T) {
	small := AllOptimizations()
	small.RcvBufBytes = 400 << 10
	big := AllOptimizations()
	big.RcvBufBytes = 12800 << 10
	rs := mustRun(t, calCfg(small), LongFlowWorkload(PatternSingle, 1))
	rb := mustRun(t, calCfg(big), LongFlowWorkload(PatternSingle, 1))
	if rb.Receiver.LatencyAvg < 5*rs.Receiver.LatencyAvg {
		t.Errorf("12800KB buffer latency (%v) should dwarf 400KB (%v)",
			rb.Receiver.LatencyAvg, rs.Receiver.LatencyAvg)
	}
	if rb.Receiver.LatencyAvg < 400*time.Microsecond {
		t.Errorf("large-buffer latency = %v, want ~milliseconds", rb.Receiver.LatencyAvg)
	}
}

// Fig. 4: a NIC-remote NUMA application loses ~20% throughput-per-core.
func TestCalRemoteNUMADrop(t *testing.T) {
	local := mustRun(t, calCfg(AllOptimizations()), LongFlowWorkload(PatternSingle, 1))
	remote := mustRun(t, calCfg(AllOptimizations()),
		Workload{Kind: "long", Pattern: PatternSingle, RemoteNUMA: true})
	drop := 1 - remote.ThroughputPerCoreGbps/local.ThroughputPerCoreGbps
	within(t, "remote NUMA drop", drop, 0.08, 0.30)
	if remote.Receiver.CacheMissRate < 0.9 {
		t.Errorf("remote NUMA miss rate = %.2f, want ~1 (DCA cannot reach)", remote.Receiver.CacheMissRate)
	}
}

// Fig. 5a: one-to-one throughput-per-core decays with flow count (~42 at
// 1 flow to ~15 at 24).
func TestCalOneToOneDecay(t *testing.T) {
	one := mustRun(t, calCfg(AllOptimizations()), LongFlowWorkload(PatternSingle, 1))
	n24 := mustRun(t, calCfg(AllOptimizations()), LongFlowWorkload(PatternOneToOne, 24))
	within(t, "one-to-one/24 tpc", n24.ThroughputPerCoreGbps, 11, 22)
	drop := 1 - n24.ThroughputPerCoreGbps/one.ThroughputPerCoreGbps
	within(t, "one-to-one decay", drop, 0.45, 0.75) // paper: 64%
	// Total throughput saturates the link from 8 flows on.
	n8 := mustRun(t, calCfg(AllOptimizations()), LongFlowWorkload(PatternOneToOne, 8))
	within(t, "one-to-one/8 total", n8.ThroughputGbps, 90, 101)
}

// Fig. 6: incast loses throughput-per-core as receiver-side cache
// contention grows (paper: ~19% drop at 8 flows; miss 48%->78%).
func TestCalIncastCacheContention(t *testing.T) {
	one := mustRun(t, calCfg(AllOptimizations()), LongFlowWorkload(PatternSingle, 1))
	in8 := mustRun(t, calCfg(AllOptimizations()), LongFlowWorkload(PatternIncast, 8))
	drop := 1 - in8.ThroughputPerCoreGbps/one.ThroughputPerCoreGbps
	within(t, "incast/8 tpc drop", drop, 0.08, 0.35)
	if in8.Receiver.CacheMissRate <= one.Receiver.CacheMissRate {
		t.Error("incast should raise the receiver miss rate")
	}
}

// Fig. 7a: the sender-side pipeline is far more efficient — ~89Gbps per
// sender core at 8 outcast flows (>= 2x the incast receiver).
func TestCalOutcastSenderEfficiency(t *testing.T) {
	out8 := mustRun(t, calCfg(AllOptimizations()), LongFlowWorkload(PatternOutcast, 8))
	if out8.Bottleneck != "sender" {
		t.Fatalf("outcast bottleneck = %s, want sender", out8.Bottleneck)
	}
	perSender := out8.ThroughputGbps / out8.Sender.BusyCores
	within(t, "outcast/8 per-sender-core", perSender, 68, 100)
	in8 := mustRun(t, calCfg(AllOptimizations()), LongFlowWorkload(PatternIncast, 8))
	if perSender < 1.7*in8.ThroughputPerCoreGbps {
		t.Errorf("sender pipeline (%.1f) should be ~2x receiver pipeline (%.1f)",
			perSender, in8.ThroughputPerCoreGbps)
	}
}

// Fig. 8a/8c: all-to-all at 24x24 loses ~67% throughput-per-core, and the
// post-GRO skb size collapses because per-flow aggregation opportunities
// vanish.
func TestCalAllToAllCollapse(t *testing.T) {
	one := mustRun(t, calCfg(AllOptimizations()), LongFlowWorkload(PatternSingle, 1))
	a24 := mustRun(t, calCfg(AllOptimizations()), LongFlowWorkload(PatternAllToAll, 24))
	drop := 1 - a24.ThroughputPerCoreGbps/one.ThroughputPerCoreGbps
	within(t, "all-to-all/24 tpc drop", drop, 0.45, 0.80) // paper: ~67%
	if a24.Receiver.SKBAvgBytes > one.Receiver.SKBAvgBytes/3 {
		t.Errorf("24x24 skbs (%.0fB) should be tiny next to single flow (%.0fB)",
			a24.Receiver.SKBAvgBytes, one.Receiver.SKBAvgBytes)
	}
	if a24.Receiver.SKB64KBShare > 0.2 {
		t.Errorf("24x24 full-size skb share = %.2f, want small", a24.Receiver.SKB64KBShare)
	}
	if one.Receiver.SKB64KBShare < 0.5 {
		t.Errorf("single-flow full-size skb share = %.2f, want majority", one.Receiver.SKB64KBShare)
	}
}

// Fig. 9: packet loss cuts total throughput; the tpc/total gap opens; the
// tiny loss rate (1.5e-4) does not hurt (the paper even measures a slight
// improvement from better cache hit rates).
func TestCalLossImpact(t *testing.T) {
	base := mustRun(t, calCfg(AllOptimizations()), LongFlowWorkload(PatternSingle, 1))
	tiny := calCfg(AllOptimizations())
	tiny.LossRate = 1.5e-4
	rTiny := mustRun(t, tiny, LongFlowWorkload(PatternSingle, 1))
	within(t, "loss 1.5e-4 vs base", rTiny.ThroughputPerCoreGbps/base.ThroughputPerCoreGbps, 0.9, 1.15)

	heavy := calCfg(AllOptimizations())
	heavy.LossRate = 1.5e-2
	rHeavy := mustRun(t, heavy, LongFlowWorkload(PatternSingle, 1))
	if rHeavy.ThroughputGbps > 0.9*base.ThroughputGbps {
		t.Errorf("1.5e-2 loss should cut total throughput: %.1f vs %.1f",
			rHeavy.ThroughputGbps, base.ThroughputGbps)
	}
	if rHeavy.Sender.Retransmits < 50 {
		t.Errorf("retransmits = %d, want many", rHeavy.Sender.Retransmits)
	}
	// The gap between tpc and total throughput opens (paper Fig. 9a/9b).
	gap := rHeavy.ThroughputPerCoreGbps - rHeavy.ThroughputGbps
	if gap < 5 {
		t.Errorf("tpc/total gap = %.1f, want wide under heavy loss", gap)
	}
}

// Fig. 10: short-flow RPCs — tpc grows with RPC size; at 4KB, data copy
// is NOT the dominant category and the paper reports ~6Gbps per core
// (one-way transaction bytes, as netperf reports).
func TestCalRPCSizes(t *testing.T) {
	var prev float64
	for _, size := range []int64{4096, 16384, 65536} {
		res := mustRun(t, calCfg(AllOptimizations()), RPCIncastWorkload(16, size))
		oneWay := res.RPCGbps
		if oneWay <= prev {
			t.Errorf("RPC %dKB one-way goodput %.2f did not grow from %.2f", size>>10, oneWay, prev)
		}
		prev = oneWay
	}
	r4 := mustRun(t, calCfg(AllOptimizations()), RPCIncastWorkload(16, 4096))
	within(t, "4KB RPC per-server-core (one-way)", r4.RPCGbps/r4.Receiver.BusyCores, 3, 10)
	bd := r4.Receiver.Breakdown
	if bd["data_copy"] >= bd["tcp/ip"] {
		t.Errorf("4KB RPC: copy (%.2f) should not dominate tcp/ip (%.2f)", bd["data_copy"], bd["tcp/ip"])
	}
	r64 := mustRun(t, calCfg(AllOptimizations()), RPCIncastWorkload(16, 65536))
	if r64.Receiver.Breakdown["data_copy"] < 0.3 {
		t.Errorf("64KB RPC: copy share %.2f should approach the long-flow profile",
			r64.Receiver.Breakdown["data_copy"])
	}
}

// Fig. 10c: unlike long flows, the 4KB RPC server barely suffers on a
// NIC-remote NUMA node.
func TestCalRPCRemoteNUMAMarginal(t *testing.T) {
	local := mustRun(t, calCfg(AllOptimizations()), RPCIncastWorkload(16, 4096))
	wl := RPCIncastWorkload(16, 4096)
	wl.RemoteNUMA = true
	remote := mustRun(t, calCfg(AllOptimizations()), wl)
	ratio := remote.RPCGbps / local.RPCGbps
	within(t, "4KB RPC remote/local", ratio, 0.9, 1.05)
}

// Fig. 11: mixing one long flow with 16 short flows on a core cuts
// combined throughput-per-core by ~43%, and both classes suffer versus
// isolation (long 42->20, short ~6.15->2.6 in the paper).
func TestCalMixedFlows(t *testing.T) {
	alone := mustRun(t, calCfg(AllOptimizations()), MixedWorkload(0, 4096))
	mixed := mustRun(t, calCfg(AllOptimizations()), MixedWorkload(16, 4096))
	drop := 1 - mixed.ThroughputPerCoreGbps/alone.ThroughputPerCoreGbps
	within(t, "mixed tpc drop", drop, 0.3, 0.65)
	within(t, "mixed long-flow Gbps", mixed.LongFlowGbps, 10, 30) // paper ~20
	rpcIso := mustRun(t, calCfg(AllOptimizations()), RPCIncastWorkload(16, 4096))
	if mixed.RPCGbps > 0.8*rpcIso.RPCGbps {
		t.Errorf("mixed shorts (%.2f) should lose badly vs isolation (%.2f)",
			mixed.RPCGbps, rpcIso.RPCGbps)
	}
}

// Fig. 12: disabling DCA costs ~19%; enabling the IOMMU costs ~26% with
// memory management ballooning (~30% of receiver cycles).
func TestCalDCAAndIOMMU(t *testing.T) {
	base := mustRun(t, calCfg(AllOptimizations()), LongFlowWorkload(PatternSingle, 1))
	noDCA := AllOptimizations()
	noDCA.DCA = false
	rd := mustRun(t, calCfg(noDCA), LongFlowWorkload(PatternSingle, 1))
	within(t, "DCA-off drop", 1-rd.ThroughputPerCoreGbps/base.ThroughputPerCoreGbps, 0.08, 0.3)

	iommu := AllOptimizations()
	iommu.IOMMU = true
	ri := mustRun(t, calCfg(iommu), LongFlowWorkload(PatternSingle, 1))
	within(t, "IOMMU drop", 1-ri.ThroughputPerCoreGbps/base.ThroughputPerCoreGbps, 0.18, 0.42)
	within(t, "IOMMU receiver memory share", ri.Receiver.Breakdown["memory"], 0.22, 0.48)
}

// Fig. 13: congestion control choice barely moves throughput-per-core;
// BBR pays extra sender-side scheduling for pacing.
func TestCalCongestionControlNeutral(t *testing.T) {
	cubic := mustRun(t, calCfg(AllOptimizations()), LongFlowWorkload(PatternSingle, 1))
	for _, cc := range []string{"bbr", "dctcp"} {
		s := AllOptimizations()
		s.CC = cc
		res := mustRun(t, calCfg(s), LongFlowWorkload(PatternSingle, 1))
		within(t, cc+" tpc vs cubic", res.ThroughputPerCoreGbps/cubic.ThroughputPerCoreGbps, 0.85, 1.15)
		if cc == "bbr" && res.Sender.Breakdown["sched"] <= cubic.Sender.Breakdown["sched"] {
			t.Errorf("BBR sender sched (%.3f) should exceed CUBIC's (%.3f)",
				res.Sender.Breakdown["sched"], cubic.Sender.Breakdown["sched"])
		}
	}
}

// Determinism: identical configuration and seed give identical results.
func TestCalDeterminism(t *testing.T) {
	a := mustRun(t, calCfg(AllOptimizations()), LongFlowWorkload(PatternIncast, 4))
	b := mustRun(t, calCfg(AllOptimizations()), LongFlowWorkload(PatternIncast, 4))
	if a.ThroughputGbps != b.ThroughputGbps ||
		a.Receiver.CacheMissRate != b.Receiver.CacheMissRate ||
		a.Receiver.BusyCores != b.Receiver.BusyCores {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	c := mustRun(t, Config{Stack: AllOptimizations(), Seed: 99,
		Warmup: 15 * time.Millisecond, Duration: 25 * time.Millisecond},
		LongFlowWorkload(PatternIncast, 4))
	if a.ThroughputGbps == c.ThroughputGbps && a.Receiver.CacheMissRate == c.Receiver.CacheMissRate {
		t.Error("different seeds produced byte-identical results; RNG unused?")
	}
}
