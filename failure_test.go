package hostsim

import (
	"testing"
	"time"
)

// Failure-injection tests: drive the stack into pathological regimes and
// check that it degrades gracefully rather than stalling, losing bytes,
// or wedging the simulation.

func TestTinyRingUnderIncastDropsButSurvives(t *testing.T) {
	s := AllOptimizations()
	s.RxDescriptors = 32 // absurdly small ring
	res, err := Run(quickCfg(s), LongFlowWorkload(PatternIncast, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputGbps < 1 {
		t.Errorf("tiny ring collapsed throughput to %.2f Gbps", res.ThroughputGbps)
	}
	// Drops at the NIC are possible but TCP must keep the stream moving.
	if res.Receiver.NICDrops > 0 && res.Sender.Retransmits == 0 {
		t.Error("NIC drops occurred but the sender never retransmitted")
	}
}

func TestExtremeLossStillProgresses(t *testing.T) {
	cfg := quickCfg(AllOptimizations())
	cfg.LossRate = 0.10
	cfg.Duration = 40 * time.Millisecond
	res, err := Run(cfg, LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputGbps <= 0 {
		t.Fatal("10% loss wedged the connection completely")
	}
	if res.Sender.Retransmits == 0 {
		t.Error("no retransmissions under 10% loss")
	}
}

func TestBidirectionalLossIncludesAckLoss(t *testing.T) {
	// Loss applies to the data direction only in Config; verify ACK-path
	// resilience via the heavy-loss data direction plus RTO machinery.
	cfg := quickCfg(AllOptimizations())
	cfg.LossRate = 0.05
	cfg.Duration = 60 * time.Millisecond
	res, err := Run(cfg, LongFlowWorkload(PatternOneToOne, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputGbps <= 0 {
		t.Fatal("multi-flow heavy loss wedged all connections")
	}
}

func TestTinyBuffersDoNotDeadlock(t *testing.T) {
	s := AllOptimizations()
	s.RcvBufBytes = 32 << 10 // 32KB: window smaller than one TSO aggregate
	s.SndBufBytes = 128 << 10
	res, err := Run(quickCfg(s), LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputGbps <= 0 {
		t.Fatal("tiny buffers deadlocked the transfer")
	}
}

func TestTinyBufferWithLossRecovers(t *testing.T) {
	// The nastiest combination: a window barely above one MSS plus loss —
	// recovery must rely on RTO and persist machinery.
	s := AllOptimizations()
	s.RcvBufBytes = 64 << 10
	cfg := quickCfg(s)
	cfg.LossRate = 0.02
	cfg.Duration = 60 * time.Millisecond
	res, err := Run(cfg, LongFlowWorkload(PatternSingle, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputGbps <= 0 {
		t.Fatal("tiny window + loss deadlocked")
	}
}

func TestManyFlowsOnFewDescriptors(t *testing.T) {
	s := AllOptimizations()
	s.RxDescriptors = 64
	res, err := Run(quickCfg(s), LongFlowWorkload(PatternAllToAll, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputGbps < 5 {
		t.Errorf("64-descriptor rings under 8x8 all-to-all moved only %.2f Gbps", res.ThroughputGbps)
	}
}

func TestRPCUnderLoss(t *testing.T) {
	cfg := quickCfg(AllOptimizations())
	cfg.LossRate = 0.01
	cfg.Duration = 40 * time.Millisecond
	res, err := Run(cfg, RPCIncastWorkload(8, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if res.RPCCompleted == 0 {
		t.Fatal("no RPC completed under 1% loss")
	}
}

func TestMixedUnderLossAndTinyRing(t *testing.T) {
	s := AllOptimizations()
	s.RxDescriptors = 128
	cfg := quickCfg(s)
	cfg.LossRate = 0.005
	cfg.Duration = 40 * time.Millisecond
	res, err := Run(cfg, MixedWorkload(8, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if res.LongFlowGbps <= 0 || res.RPCCompleted == 0 {
		t.Errorf("a flow class starved: long %.2f Gbps, rpcs %d", res.LongFlowGbps, res.RPCCompleted)
	}
}

func TestNoOptUnderAllToAll(t *testing.T) {
	// The most packet-intensive configuration: per-MTU skbs, no
	// aggregation, hash steering, 576 flows.
	res, err := Run(quickCfg(NoOptimizations()), LongFlowWorkload(PatternAllToAll, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputGbps <= 0 {
		t.Fatal("no-opt all-to-all moved no data")
	}
}
