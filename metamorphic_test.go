package hostsim_test

// Metamorphic properties: relations that must hold between *pairs* of
// runs (same seed, different parallelism; checker on vs off; longer
// warmup; one optimization more) regardless of the simulator's absolute
// calibration. They catch bug classes point assertions cannot: hidden
// shared state across concurrent runs, checker observer effects,
// non-steady-state measurement windows, optimization regressions.

import (
	"fmt"
	"math"
	"testing"
	"time"

	"hostsim"
)

// fingerprint renders every deterministic measurement of a Result.
// Two runs with equal fingerprints produced identical physics: map
// fields print in sorted key order, so the string is stable.
func fingerprint(r *hostsim.Result) string {
	return fmt.Sprintf("dur=%v thpt=%v tpc=%v bott=%s rpc=%d longGbps=%v rpcGbps=%v flows=%v fair=%v snd=%+v rcv=%+v",
		r.Duration, r.ThroughputGbps, r.ThroughputPerCoreGbps, r.Bottleneck,
		r.RPCCompleted, r.LongFlowGbps, r.RPCGbps, r.FlowGbps, r.FairnessIndex,
		r.Sender, r.Receiver)
}

func metaCfg(s hostsim.Stack) hostsim.Config {
	return hostsim.Config{Stack: s, Seed: 7,
		Warmup: 10 * time.Millisecond, Duration: 15 * time.Millisecond}
}

// TestMetamorphicDeterminismAcrossJobs runs a mixed batch serially and
// with full parallelism: every run must be bit-identical, proving
// simulations share no hidden state.
func TestMetamorphicDeterminismAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run property")
	}
	jobs := []hostsim.Job{
		{Config: metaCfg(hostsim.AllOptimizations()), Workload: hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)},
		{Config: metaCfg(hostsim.NoOptimizations()), Workload: hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)},
		{Config: metaCfg(hostsim.AllOptimizations()), Workload: hostsim.LongFlowWorkload(hostsim.PatternIncast, 8)},
		{Config: metaCfg(hostsim.AllOptimizations()), Workload: hostsim.RPCIncastWorkload(16, 4096)},
	}
	serial, err := hostsim.RunMany(jobs, hostsim.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := hostsim.RunMany(jobs, hostsim.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if a, b := fingerprint(serial[i]), fingerprint(par[i]); a != b {
			t.Errorf("job %d diverged between -jobs 1 and -jobs 8:\n serial: %s\n   par8: %s", i, a, b)
		}
	}
}

// TestMetamorphicCheckTransparency asserts the invariant checker is a
// pure observer: a checked run must be bit-identical to an unchecked
// one (audits never charge cycles or draw random numbers).
func TestMetamorphicCheckTransparency(t *testing.T) {
	wl := hostsim.LongFlowWorkload(hostsim.PatternIncast, 4)
	plain, err := hostsim.Run(metaCfg(hostsim.AllOptimizations()), wl)
	if err != nil {
		t.Fatal(err)
	}
	cfg := metaCfg(hostsim.AllOptimizations())
	cfg.Check = &hostsim.CheckOptions{Collect: true}
	checked, err := hostsim.Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(checked.Violations) != 0 {
		t.Fatalf("checked run violated invariants: %v", checked.Violations)
	}
	if a, b := fingerprint(plain), fingerprint(checked); a != b {
		t.Errorf("checker perturbed the simulation:\n   off: %s\n    on: %s", a, b)
	}
}

// TestMetamorphicLadderMonotonic walks Fig. 3a's optimization ladder:
// each step (No Opt -> +TSO/GRO -> +Jumbo -> +aRFS/all) must strictly
// raise single-flow throughput-per-core, whatever the exact values.
func TestMetamorphicLadderMonotonic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run property")
	}
	noOpt := hostsim.NoOptimizations()
	tsogro := noOpt
	tsogro.TSO, tsogro.GSO, tsogro.GRO = true, true, true
	jumbo := tsogro
	jumbo.JumboFrames = true
	ladder := []struct {
		name  string
		stack hostsim.Stack
	}{
		{"no-opt", noOpt},
		{"+tso/gro", tsogro},
		{"+jumbo", jumbo},
		{"+arfs(all)", hostsim.AllOptimizations()},
	}
	wl := hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)
	prev, prevName := -1.0, ""
	for _, step := range ladder {
		res, err := hostsim.Run(metaCfg(step.stack), wl)
		if err != nil {
			t.Fatal(err)
		}
		tpc := res.ThroughputPerCoreGbps
		t.Logf("%-12s tpc %6.2f Gbps", step.name, tpc)
		if tpc <= prev {
			t.Errorf("ladder not monotonic: %s tpc %.2f <= %s tpc %.2f", step.name, tpc, prevName, prev)
		}
		prev, prevName = tpc, step.name
	}
}

// TestMetamorphicRPCSymmetry uses the mirrored-traffic property of
// ping-pong RPCs: requests and responses are the same size, so both
// hosts must deliver (copy to their applications) the same volume, give
// or take the RPCs in flight when the window closed.
func TestMetamorphicRPCSymmetry(t *testing.T) {
	const size, clients = 16384, 16
	res, err := hostsim.Run(metaCfg(hostsim.AllOptimizations()), hostsim.RPCIncastWorkload(clients, size))
	if err != nil {
		t.Fatal(err)
	}
	snd, rcv := res.Sender.CopiedGB, res.Receiver.CopiedGB
	slack := float64(clients*size) / 1e9 // one in-flight RPC per client
	if diff := math.Abs(snd - rcv); diff > slack {
		t.Errorf("mirrored RPC traffic asymmetric: sender copied %.4f GB, receiver %.4f GB (|diff| %.4f > slack %.4f)",
			snd, rcv, diff, slack)
	}
}

// TestMetamorphicWarmupIndependence asserts the measurement window sees
// steady state: doubling the warmup must not move single-flow
// throughput by more than a few percent.
func TestMetamorphicWarmupIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run property")
	}
	wl := hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)
	run := func(warmup time.Duration) float64 {
		res, err := hostsim.Run(hostsim.Config{Stack: hostsim.AllOptimizations(), Seed: 7,
			Warmup: warmup, Duration: 20 * time.Millisecond}, wl)
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputGbps
	}
	short, long := run(10*time.Millisecond), run(20*time.Millisecond)
	if ratio := short / long; ratio < 0.95 || ratio > 1.05 {
		t.Errorf("throughput depends on warmup length: %.2f Gbps after 10ms vs %.2f Gbps after 20ms (ratio %.3f)",
			short, long, ratio)
	}
}
