package hostsim

import (
	"context"
	"runtime"
	"time"

	"hostsim/internal/runner"
)

// Job is one simulation in a RunMany batch.
type Job struct {
	Config   Config
	Workload Workload
}

// RunOption tunes a RunMany call.
type RunOption func(*runner.Options)

// WithParallelism sets the number of simulations run concurrently.
// n <= 0 means runtime.NumCPU(); 1 runs the batch serially.
func WithParallelism(n int) RunOption {
	return func(o *runner.Options) { o.Workers = n }
}

// WithContext makes the batch cancellable: jobs not yet started when ctx
// is cancelled report ctx.Err() instead of running.
func WithContext(ctx context.Context) RunOption {
	return func(o *runner.Options) { o.Context = ctx }
}

// WithJobTimeout bounds each job's wall-clock time. A timed-out job
// reports a runner.TimeoutError; its goroutine is abandoned (a CPU-bound
// simulation cannot be interrupted), so use this as a last-resort guard
// against runaway configurations, not as control flow.
func WithJobTimeout(d time.Duration) RunOption {
	return func(o *runner.Options) { o.JobTimeout = d }
}

// RunMany executes a batch of independent simulations across CPU cores,
// up to runtime.NumCPU() at a time by default. Results are returned in
// job order, so code that formats them produces byte-identical output
// whatever the parallelism — each run owns its engine, hosts and seeded
// RNG, making runs fully independent.
//
// The returned error is the first job error in submission order (the
// same one a serial loop would have hit first); the result slice always
// has one entry per job, nil where that job failed.
func RunMany(jobs []Job, opts ...RunOption) ([]*Result, error) {
	ro := runner.Options{Workers: runtime.NumCPU()}
	for _, o := range opts {
		o(&ro)
	}
	res := runner.Map(jobs, func(j Job) (*Result, error) {
		return Run(j.Config, j.Workload)
	}, ro)
	out := make([]*Result, len(res))
	var firstErr error
	for i, r := range res {
		if r.Err != nil {
			if firstErr == nil {
				firstErr = r.Err
			}
			continue
		}
		out[i] = r.Value
	}
	return out, firstErr
}
