package hostsim_test

import (
	"fmt"
	"time"

	"hostsim"
)

// ExampleRun reproduces the paper's headline single-flow experiment and
// prints qualitative facts that hold across calibrations.
func ExampleRun() {
	res, err := hostsim.Run(
		hostsim.Config{Stack: hostsim.AllOptimizations(), Seed: 1,
			Warmup: 10 * time.Millisecond, Duration: 15 * time.Millisecond},
		hostsim.LongFlowWorkload(hostsim.PatternSingle, 1),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("bottleneck:", res.Bottleneck)
	fmt.Println("receiver saturated:", res.Receiver.MaxCoreUtil > 0.99)
	copyShare := res.Receiver.Breakdown["data_copy"]
	dominant := true
	for cat, f := range res.Receiver.Breakdown {
		if cat != "data_copy" && f >= copyShare {
			dominant = false
		}
	}
	fmt.Println("data copy dominates the receiver:", dominant)
	// Output:
	// bottleneck: receiver
	// receiver saturated: true
	// data copy dominates the receiver: true
}

// ExampleRun_incast shows the §3.3 receiver-contention study: the miss
// rate climbs as flows share one receiver core's cache.
func ExampleRun_incast() {
	cfg := hostsim.Config{Stack: hostsim.AllOptimizations(), Seed: 7,
		Warmup: 10 * time.Millisecond, Duration: 15 * time.Millisecond}
	one, err := hostsim.Run(cfg, hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
	if err != nil {
		panic(err)
	}
	eight, err := hostsim.Run(cfg, hostsim.LongFlowWorkload(hostsim.PatternIncast, 8))
	if err != nil {
		panic(err)
	}
	fmt.Println("incast raises the miss rate:", eight.Receiver.CacheMissRate > one.Receiver.CacheMissRate)
	fmt.Println("incast lowers throughput-per-core:", eight.ThroughputPerCoreGbps < one.ThroughputPerCoreGbps)
	// Output:
	// incast raises the miss rate: true
	// incast lowers throughput-per-core: true
}
