package hostsim_test

import (
	"fmt"
	"time"

	"hostsim"
)

// ExampleRun reproduces the paper's headline single-flow experiment and
// prints qualitative facts that hold across calibrations.
func ExampleRun() {
	res, err := hostsim.Run(
		hostsim.Config{Stack: hostsim.AllOptimizations(), Seed: 1,
			Warmup: 10 * time.Millisecond, Duration: 15 * time.Millisecond},
		hostsim.LongFlowWorkload(hostsim.PatternSingle, 1),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("bottleneck:", res.Bottleneck)
	fmt.Println("receiver saturated:", res.Receiver.MaxCoreUtil > 0.99)
	copyShare := res.Receiver.Breakdown["data_copy"]
	dominant := true
	for cat, f := range res.Receiver.Breakdown {
		if cat != "data_copy" && f >= copyShare {
			dominant = false
		}
	}
	fmt.Println("data copy dominates the receiver:", dominant)
	// Output:
	// bottleneck: receiver
	// receiver saturated: true
	// data copy dominates the receiver: true
}

// ExampleRun_tuning condenses the §3.1 cache-aware buffer study (the
// examples/tuning walkthrough): with DDIO, the DCA-eligible L3 slice is
// the real buffer budget — sizing the TCP Rx buffer near it beats both
// starving the pipe and Linux's memory-oblivious autotuning.
func ExampleRun_tuning() {
	run := func(bufKB int64) *hostsim.Result {
		s := hostsim.AllOptimizations()
		s.RcvBufBytes = bufKB << 10
		s.RxDescriptors = 256
		res, err := hostsim.Run(hostsim.Config{Stack: s, Seed: 7,
			Warmup: 10 * time.Millisecond, Duration: 15 * time.Millisecond},
			hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
		if err != nil {
			panic(err)
		}
		return res
	}
	starved, tuned, oversized := run(400), run(3200), run(12800)
	fmt.Println("tuned buffer beats a starved one:", tuned.ThroughputGbps > starved.ThroughputGbps)
	fmt.Println("tuned buffer beats an oversized one:", tuned.ThroughputGbps > oversized.ThroughputGbps)
	fmt.Println("oversizing raises the miss rate:", oversized.Receiver.CacheMissRate > tuned.Receiver.CacheMissRate)
	// Output:
	// tuned buffer beats a starved one: true
	// tuned buffer beats an oversized one: true
	// oversizing raises the miss rate: true
}

// ExampleRun_checked is the quickstart for the invariant checker: set
// Config.Check and every audit — byte conservation, cycle accounting,
// buffer-pool leaks, TCP sequence sanity — runs throughout the
// simulation. Audits are pure reads, so the measured physics is
// identical to an unchecked run.
func ExampleRun_checked() {
	cfg := hostsim.Config{Stack: hostsim.AllOptimizations(), Seed: 1,
		Warmup: 10 * time.Millisecond, Duration: 15 * time.Millisecond,
		Check: &hostsim.CheckOptions{Collect: true}}
	wl := hostsim.LongFlowWorkload(hostsim.PatternSingle, 1)
	checked, err := hostsim.Run(cfg, wl)
	if err != nil {
		panic(err)
	}
	cfg.Check = nil
	plain, err := hostsim.Run(cfg, wl)
	if err != nil {
		panic(err)
	}
	fmt.Println("violations:", len(checked.Violations))
	fmt.Println("checker perturbed the run:", checked.ThroughputGbps != plain.ThroughputGbps)
	// Output:
	// violations: 0
	// checker perturbed the run: false
}

// ExampleRun_incast shows the §3.3 receiver-contention study: the miss
// rate climbs as flows share one receiver core's cache.
func ExampleRun_incast() {
	cfg := hostsim.Config{Stack: hostsim.AllOptimizations(), Seed: 7,
		Warmup: 10 * time.Millisecond, Duration: 15 * time.Millisecond}
	one, err := hostsim.Run(cfg, hostsim.LongFlowWorkload(hostsim.PatternSingle, 1))
	if err != nil {
		panic(err)
	}
	eight, err := hostsim.Run(cfg, hostsim.LongFlowWorkload(hostsim.PatternIncast, 8))
	if err != nil {
		panic(err)
	}
	fmt.Println("incast raises the miss rate:", eight.Receiver.CacheMissRate > one.Receiver.CacheMissRate)
	fmt.Println("incast lowers throughput-per-core:", eight.ThroughputPerCoreGbps < one.ThroughputPerCoreGbps)
	// Output:
	// incast raises the miss rate: true
	// incast lowers throughput-per-core: true
}
